"""Per-job-class timing-policy store with amortization accounting.

The paper's economic argument for the offline search (Section VI-C,
Tables II/IV-VI) is that DNN training jobs *recur*: the search is paid
once per job class and its cost is amortized across every later
recurrence, each of which saves ``T_BSP - T_policy`` over the
conservative all-BSP baseline.  This module gives the fleet layer that
bookkeeping:

* :class:`JobClass` — the recurrence key: workload setup + cluster
  shape (Table I rows are exactly such classes);
* :class:`ClassPolicy` — one searched timing policy with its measured
  baseline/tuned service times and total search cost, exposing the
  same derived quantities as
  :class:`~repro.core.search.cost_model.SearchCostReport` (search cost
  in BSP-session multiples, recurrences to break even);
* :class:`PolicyStore` — the fleet-wide cache: lookups for admission
  control, per-class realized-savings accounting as tuned recurrences
  complete, and the per-class rows of the
  ``results/fleet_tuning_summary.json`` artifact.

Break-even accounting matches the cost model exactly:
``amortized_recurrences = search_cost_x / (1 - T_policy / T_BSP)``
which is the same number as ``search_cost / (T_BSP - T_policy)``
recurrences — the tests pin this equivalence against a
:class:`~repro.core.search.cost_model.SearchCostSimulator` replay.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.core.search.binary_search import ScheduleSearchResult, SearchResult
from repro.errors import ConfigurationError, FleetError
from repro.fleet.workload import JobRequest, estimate_service_time

__all__ = [
    "STORE_FORMAT_VERSION",
    "JobClass",
    "ClassPolicy",
    "PolicyStore",
    "policy_from_schedule_search",
    "policy_from_search",
]

#: On-disk payload version for persisted stores; bump on any breaking
#: change to the schema so stale files fail loudly at load time.
#: Version 2 added the N-segment schedule fields (``protocols`` /
#: ``fractions``); version-1 payloads are still readable — their
#: percent-only policies load as two-phase BSP->ASP schedules.
STORE_FORMAT_VERSION = 2

#: Oldest persisted payload version :meth:`PolicyStore.from_payload`
#: can still interpret.
_OLDEST_READABLE_VERSION = 1


@dataclass(frozen=True)
class JobClass:
    """The recurrence key: one workload setup on one cluster shape.

    Two jobs belong to the same class when they train the same Table-I
    setup with the same worker demand — exactly the condition under
    which the paper reuses a searched switch timing for a recurring
    job (Section VI-C).
    """

    setup_index: int
    n_workers: int

    @classmethod
    def of(cls, request: JobRequest) -> "JobClass":
        """The class a job request belongs to."""
        return cls(setup_index=request.setup_index, n_workers=request.n_workers)

    def label(self) -> str:
        """Short display key, e.g. ``exp1x8``."""
        return f"exp{self.setup_index}x{self.n_workers}"


@dataclass(frozen=True)
class ClassPolicy:
    """One searched timing policy and its measured economics.

    ``bsp_time`` and ``policy_time`` are *fleet-measured* service
    times (the search's static-BSP target runs and the sessions at the
    found switch point), so preemption stretches and shared-cluster
    contention are priced in, unlike the noise-free cost model.
    """

    job_class: JobClass
    percent: float
    target_accuracy: float
    bsp_time: float
    policy_time: float
    search_cost: float
    n_trials: int
    tuned_at: float
    #: The searched protocol sequence.  Two-phase timing searches (and
    #: version-1 payloads) leave ``fractions`` at None: the policy is
    #: the paper's percent-only switch point and recurrences train
    #: exactly as before the schedule generalization.  Schedule
    #: searches fill both fields and recurrences replay the full
    #: N-segment plan.
    protocols: tuple[str, ...] = ("bsp", "asp")
    fractions: tuple[float, ...] | None = None

    def schedule_label(self) -> str:
        """Display form of the protocol sequence, e.g. ``BSP -> ASP``."""
        return " -> ".join(name.upper() for name in self.protocols)

    @property
    def saving_per_recurrence(self) -> float:
        """Seconds one tuned recurrence saves over the all-BSP baseline."""
        return self.bsp_time - self.policy_time

    @property
    def search_cost_x(self) -> float:
        """Search cost in multiples of one static-BSP session (Table II)."""
        if self.bsp_time <= 0.0:
            return math.inf
        return self.search_cost / self.bsp_time

    @property
    def amortized_recurrences(self) -> float:
        """Recurrences to break even (Table II's *Amortized* column).

        ``search_cost_x / (1 - T_policy / T_BSP)`` — infinite when the
        found policy does not actually beat static BSP.
        """
        if self.bsp_time <= 0.0 or self.saving_per_recurrence <= 0.0:
            return math.inf
        return self.search_cost_x / (1.0 - self.policy_time / self.bsp_time)


def policy_from_search(
    job_class: JobClass, result: SearchResult, tuned_at: float
) -> ClassPolicy:
    """Fold a finished Algorithm 1 run into a :class:`ClassPolicy`.

    The baseline time is the mean of the search's static-BSP sessions
    and the tuned time the mean of the sessions trained at the found
    switch fraction (Algorithm 1 only ever returns a fraction it
    visited, so both sets are non-empty for new-job searches).
    """
    bsp_times = [
        trial.time for trial in result.trials if trial.switch_fraction == 1.0
    ]
    if not bsp_times:
        raise FleetError(
            f"search for {job_class.label()} trained no static-BSP session; "
            "cannot price the baseline"
        )
    tuned_times = [
        trial.time
        for trial in result.trials
        if trial.switch_fraction == result.switch_fraction
    ]
    return ClassPolicy(
        job_class=job_class,
        percent=result.switch_percent,
        target_accuracy=result.target_accuracy,
        bsp_time=sum(bsp_times) / len(bsp_times),
        policy_time=sum(tuned_times) / len(tuned_times),
        search_cost=result.search_time,
        n_trials=result.n_sessions,
        tuned_at=tuned_at,
    )


def policy_from_schedule_search(
    job_class: JobClass, result: ScheduleSearchResult, tuned_at: float
) -> ClassPolicy:
    """Fold a finished N-segment schedule search into a :class:`ClassPolicy`.

    The baseline is the mean of the sessions that kept the full budget
    on the opener protocol (the schedule-search analogue of the
    static-BSP target runs); the tuned time is the mean of the sessions
    trained at the winning schedule, falling back to the baseline when
    the winner is a degenerate all-opener schedule that only the target
    runs visited.
    """
    bsp_times = [
        trial.time for trial in result.trials if trial.fractions[0] == 1.0
    ]
    if not bsp_times:
        raise FleetError(
            f"search for {job_class.label()} trained no full-budget opener "
            "session; cannot price the baseline"
        )
    tuned_times = [
        trial.time
        for trial in result.trials
        if trial.protocols == result.protocols
        and trial.fractions == result.fractions
    ] or bsp_times
    return ClassPolicy(
        job_class=job_class,
        percent=result.fractions[0] * 100.0,
        target_accuracy=result.target_accuracy,
        bsp_time=sum(bsp_times) / len(bsp_times),
        policy_time=sum(tuned_times) / len(tuned_times),
        search_cost=result.search_time,
        n_trials=result.n_sessions,
        tuned_at=tuned_at,
        protocols=result.protocols,
        fractions=result.fractions,
    )


class PolicyStore:
    """Fleet-wide cache of searched timing policies, keyed by job class.

    The store is the amortization ledger of the paper's recurring-job
    argument (Section VI-C) lifted to fleet scale: the first admission
    of a class pays for the search, every later recurrence that reuses
    the cached policy accrues realized savings against that cost, and
    :meth:`report` exposes the per-class break-even state.
    """

    def __init__(self):
        self._policies: dict[JobClass, ClassPolicy] = {}
        self._searching: set[JobClass] = set()
        self._recurrences: dict[JobClass, int] = {}
        self._savings: dict[JobClass, float] = {}
        self._breakeven_at: dict[JobClass, int | None] = {}
        # Realized tuned service times (sum, count) per class: the
        # predicted-JCT feedback loop — fleet reality (queue-side
        # contention, elastic preemption stretches, re-simulated tails)
        # folds back into SLO admission predictions.
        self._realized_service: dict[JobClass, tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # search lifecycle
    # ------------------------------------------------------------------
    def lookup(self, job_class: JobClass) -> ClassPolicy | None:
        """The cached policy for a class, or None while un-tuned."""
        return self._policies.get(job_class)

    def is_searching(self, job_class: JobClass) -> bool:
        """Whether a search for this class is currently in flight."""
        return job_class in self._searching

    def begin_search(self, job_class: JobClass) -> None:
        """Mark a class's search as launched (one search per class)."""
        if job_class in self._policies or job_class in self._searching:
            raise FleetError(
                f"class {job_class.label()} already tuned or searching"
            )
        self._searching.add(job_class)

    def install(self, policy: ClassPolicy) -> None:
        """Publish a finished search's policy for reuse."""
        if policy.job_class in self._policies:
            raise FleetError(
                f"class {policy.job_class.label()} already has a policy"
            )
        self._searching.discard(policy.job_class)
        self._policies[policy.job_class] = policy
        self._recurrences[policy.job_class] = 0
        self._savings[policy.job_class] = 0.0
        self._breakeven_at[policy.job_class] = None

    # ------------------------------------------------------------------
    # amortization ledger
    # ------------------------------------------------------------------
    def note_recurrence(self, job_class: JobClass, service_time: float) -> None:
        """Account one completed recurrence that reused the cached policy.

        Accrues ``T_BSP - service_time`` of realized savings (the
        recurrence would otherwise have trained conservatively at
        static BSP) and records the break-even recurrence the first
        time cumulative savings cover the search cost.
        """
        policy = self._policies.get(job_class)
        if policy is None:
            raise FleetError(
                f"class {job_class.label()} has no policy to recur on"
            )
        self._recurrences[job_class] += 1
        self._savings[job_class] += policy.bsp_time - service_time
        total, count = self._realized_service.get(job_class, (0.0, 0))
        self._realized_service[job_class] = (total + service_time, count + 1)
        if (
            self._breakeven_at[job_class] is None
            and self._savings[job_class] >= policy.search_cost
        ):
            self._breakeven_at[job_class] = self._recurrences[job_class]

    def recurrences(self, job_class: JobClass) -> int:
        """Completed recurrences that reused the class's policy."""
        return self._recurrences.get(job_class, 0)

    def realized_savings(self, job_class: JobClass) -> float:
        """Cumulative seconds saved versus the all-BSP baseline."""
        return self._savings.get(job_class, 0.0)

    def breakeven_recurrence(self, job_class: JobClass) -> int | None:
        """Recurrence at which savings first covered the search cost."""
        return self._breakeven_at.get(job_class)

    # ------------------------------------------------------------------
    # admission support
    # ------------------------------------------------------------------
    def predict_service(self, request: JobRequest, scale: float) -> float:
        """Predicted service time for SLO admission control.

        Tuned classes predict the mean *realized* tuned service time
        once recurrences have completed — the feedback loop that folds
        elastic preemption stretches and re-simulated tails back into
        admission — and the search's measured tuned service time before
        any recurrence exists.  Everything else — un-tuned classes,
        explicit static policies, search trials — falls back to the
        conservative all-BSP estimate.  Never raises for an unknown
        class: the SLO scheduler must stay usable before (or without)
        tuning.
        """
        if (
            request.kind == "train"
            and request.sync_policy == "sync-switch"
            and request.percent_override is None
            and request.protocols is None
        ):
            job_class = JobClass.of(request)
            policy = self._policies.get(job_class)
            if policy is not None:
                total, count = self._realized_service.get(
                    job_class, (0.0, 0)
                )
                if count > 0:
                    return total / count
                return policy.policy_time
        return estimate_service_time(
            request.setup_index, 100.0, scale, request.steps_scale
        )

    def realized_service_mean(self, job_class: JobClass) -> float | None:
        """Mean realized tuned service time (None before any recurrence)."""
        total, count = self._realized_service.get(job_class, (0.0, 0))
        return total / count if count > 0 else None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> tuple[dict, ...]:
        """Per-class amortization rows for the fleet summary artifact.

        Infinite break-even counts (a policy that never beats BSP) are
        reported as ``None`` so the rows stay JSON-serializable.
        """
        rows = []
        for job_class in sorted(
            self._policies, key=lambda cls: (cls.setup_index, cls.n_workers)
        ):
            policy = self._policies[job_class]
            amortized = policy.amortized_recurrences
            rows.append(
                {
                    "job_class": job_class.label(),
                    "setup_index": job_class.setup_index,
                    "n_workers": job_class.n_workers,
                    "schedule": policy.schedule_label(),
                    "fractions": (
                        None
                        if policy.fractions is None
                        else list(policy.fractions)
                    ),
                    "percent": policy.percent,
                    "target_accuracy": policy.target_accuracy,
                    "bsp_time_s": policy.bsp_time,
                    "policy_time_s": policy.policy_time,
                    "search_cost_s": policy.search_cost,
                    "search_cost_x": (
                        None
                        if math.isinf(policy.search_cost_x)
                        else policy.search_cost_x
                    ),
                    "amortized_recurrences": (
                        None if math.isinf(amortized) else amortized
                    ),
                    "n_trials": policy.n_trials,
                    "tuned_at_s": policy.tuned_at,
                    "recurrences": self._recurrences[job_class],
                    "realized_savings_s": self._savings[job_class],
                    "breakeven_recurrence": self._breakeven_at[job_class],
                    "realized_service_mean_s": self.realized_service_mean(
                        job_class
                    ),
                }
            )
        return tuple(rows)

    # ------------------------------------------------------------------
    # persistence (warm-starting recurring classes across fleet runs)
    # ------------------------------------------------------------------
    def to_payload(self, scale: float | None = None) -> dict:
        """JSON-serializable snapshot of policies and ledger state.

        In-flight searches are deliberately *not* persisted: a search
        only exists inside one fleet run's event loop, so a reloaded
        store treats the class as un-tuned and searches again.

        ``scale`` stamps the step-budget scale the times were measured
        at: absolute service times are only comparable within one
        scale, so loading checks it (see :meth:`from_payload`).
        """
        classes = []
        for job_class in sorted(
            self._policies, key=lambda cls: (cls.setup_index, cls.n_workers)
        ):
            policy = self._policies[job_class]
            total, count = self._realized_service.get(job_class, (0.0, 0))
            classes.append(
                {
                    "setup_index": job_class.setup_index,
                    "n_workers": job_class.n_workers,
                    "protocols": list(policy.protocols),
                    "fractions": (
                        None
                        if policy.fractions is None
                        else list(policy.fractions)
                    ),
                    "percent": policy.percent,
                    "target_accuracy": policy.target_accuracy,
                    "bsp_time": policy.bsp_time,
                    "policy_time": policy.policy_time,
                    "search_cost": policy.search_cost,
                    "n_trials": policy.n_trials,
                    "tuned_at": policy.tuned_at,
                    "recurrences": self._recurrences[job_class],
                    "realized_savings": self._savings[job_class],
                    "breakeven_recurrence": self._breakeven_at[job_class],
                    "realized_service_sum": total,
                    "realized_service_count": count,
                }
            )
        return {
            "version": STORE_FORMAT_VERSION,
            "scale": scale,
            "classes": classes,
        }

    @classmethod
    def from_payload(
        cls, payload: dict, scale: float | None = None
    ) -> "PolicyStore":
        """Rebuild a store from :meth:`to_payload`.

        Checks the payload version and — when both sides declare one —
        the step-budget scale: a store measured at one ``--scale``
        must not warm-start predictions at another (the absolute
        service times would be in different units).
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("policy-store payload must be an object")
        version = payload.get("version")
        if (
            not isinstance(version, int)
            or not _OLDEST_READABLE_VERSION <= version <= STORE_FORMAT_VERSION
        ):
            raise ConfigurationError(
                f"policy-store payload version {version!r} is not supported "
                f"(this build reads versions {_OLDEST_READABLE_VERSION}"
                f"-{STORE_FORMAT_VERSION}); "
                "re-create the store with the current code"
            )
        stored_scale = payload.get("scale")
        if (
            scale is not None
            and stored_scale is not None
            and stored_scale != scale
        ):
            raise ConfigurationError(
                f"policy store was measured at scale {stored_scale:g} but "
                f"this run uses scale {scale:g}; service times are not "
                "comparable across scales — use a separate store per scale"
            )
        store = cls()
        for entry in payload.get("classes", []):
            try:
                job_class = JobClass(
                    setup_index=int(entry["setup_index"]),
                    n_workers=int(entry["n_workers"]),
                )
                # Version-1 entries predate schedules: they carry only
                # the switch percent and load as two-phase policies.
                protocols = entry.get("protocols")
                fractions = entry.get("fractions")
                policy = ClassPolicy(
                    job_class=job_class,
                    percent=float(entry["percent"]),
                    target_accuracy=float(entry["target_accuracy"]),
                    bsp_time=float(entry["bsp_time"]),
                    policy_time=float(entry["policy_time"]),
                    search_cost=float(entry["search_cost"]),
                    n_trials=int(entry["n_trials"]),
                    tuned_at=float(entry["tuned_at"]),
                    protocols=(
                        ("bsp", "asp")
                        if protocols is None
                        else tuple(str(name) for name in protocols)
                    ),
                    fractions=(
                        None
                        if fractions is None
                        else tuple(float(value) for value in fractions)
                    ),
                )
                recurrences = int(entry["recurrences"])
                savings = float(entry["realized_savings"])
                breakeven = entry["breakeven_recurrence"]
                breakeven = None if breakeven is None else int(breakeven)
                service_sum = float(entry["realized_service_sum"])
                service_count = int(entry["realized_service_count"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed policy-store class entry: {exc}"
                ) from exc
            try:
                store.install(policy)
            except FleetError as exc:
                # e.g. duplicate class entries in a hand-edited file —
                # surface as the load contract's configuration error.
                raise ConfigurationError(
                    f"invalid policy-store payload: {exc}"
                ) from exc
            store._recurrences[job_class] = recurrences
            store._savings[job_class] = savings
            store._breakeven_at[job_class] = breakeven
            if service_count > 0:
                store._realized_service[job_class] = (
                    service_sum, service_count
                )
        return store

    def save(self, path: str | Path, scale: float | None = None) -> Path:
        """Persist the store as JSON (for ``fleet --policy-store``)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(scale=scale), indent=2) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path, scale: float | None = None) -> "PolicyStore":
        """Load a persisted store (raises ``ConfigurationError`` on a
        missing/corrupt file, an unsupported payload version, or a
        step-budget scale mismatch)."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read policy store {path}: {exc}"
            ) from exc
        return cls.from_payload(payload, scale=scale)
