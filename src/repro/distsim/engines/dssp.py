"""Dynamic Stale Synchronous Parallel engine.

DSSP (Zhao et al., ICDCS 2019 — the paper's reference [8]) generalises
SSP by letting the staleness bound move inside a range
``[lower_bound, upper_bound]`` at runtime.  This implementation uses a
simple, documented adaptation rule rather than the original paper's
full lookup-table scheme: every ``adapt_every`` pushes it measures how
often workers were blocked at the SSP barrier; a high blocking rate
relaxes the bound (towards throughput), a low one tightens it (towards
freshness).  The behavioural envelope — throughput between SSP and ASP
with bounded realized staleness — is what Sync-Switch's comparisons
need.
"""

from __future__ import annotations

from repro.distsim.engines.base import StopCondition, TrainingSession
from repro.distsim.engines.ssp import SSPEngine

__all__ = ["DSSPEngine"]


class DSSPEngine:
    """SSP with a dynamically adapted staleness bound."""

    name = "dssp"
    precision = 30
    synchronous = False
    config_schema = {
        "batch_size": "per-worker mini-batch size (default: job batch size)",
        "lr_multiplier": "learning-rate scale (default: 1.0)",
        "lower_bound": "smallest adaptive staleness bound (default: 2)",
        "upper_bound": "largest adaptive staleness bound (default: 8)",
        "adapt_every": "pushes between bound adaptations (default: 64)",
        "momentum_schedule": "post-switch momentum ramp (MomentumSchedule)",
    }

    def __init__(self):
        self._ssp = SSPEngine()

    def run(
        self,
        session: TrainingSession,
        steps: int,
        options: dict | None = None,
        stop: StopCondition | None = None,
    ) -> str:
        options = dict(options or {})
        lower = int(options.pop("lower_bound", 2))
        upper = int(options.pop("upper_bound", 8))
        adapt_every = int(options.pop("adapt_every", 64))
        if upper < lower:
            lower, upper = upper, lower

        bound = lower
        remaining = steps
        reason = "completed"
        while remaining > 0:
            chunk = min(adapt_every, remaining)
            before_block = self._blocking_signal(session)
            chunk_options = dict(options)
            chunk_options["staleness_bound"] = bound
            reason = self._ssp.run(session, chunk, chunk_options, stop)
            remaining -= chunk
            if reason != "completed":
                return reason
            after_block = self._blocking_signal(session)
            # Heuristic adaptation: realized staleness pressing against
            # the current bound means workers were held back -> relax;
            # staleness well under the bound -> tighten.
            pressure = after_block - before_block
            if pressure > 0.5 and bound < upper:
                bound += 1
            elif pressure < 0.1 and bound > lower:
                bound -= 1
        return reason

    def _blocking_signal(self, session: TrainingSession) -> float:
        """Fraction of recent pushes with near-maximal staleness."""
        return session.telemetry.staleness_high_fraction(
            session.cluster.n_active
        )
