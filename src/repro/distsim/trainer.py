"""The distributed trainer: executes a training plan on the simulator.

This is the substrate equivalent of a TensorFlow training job plus the
parts of Sync-Switch's runtime that live next to the framework: it
sequences protocol segments, charges checkpoint/restart overhead at
every protocol switch (Section V), detects divergence, and assembles
the final :class:`~repro.distsim.telemetry.TrainingResult`.

Policy *decisions* (which plan, when to react to stragglers) live in
:mod:`repro.core`; this module only executes them.
"""

from __future__ import annotations

from repro.distsim.cluster import Cluster, ClusterSpec
from repro.distsim.engines import is_synchronous, make_engine
from repro.distsim.engines.base import StopCondition, TrainingSession
from repro.distsim.job import JobConfig, Segment, TrainingPlan
from repro.distsim.overheads import ProvisioningModel
from repro.distsim.stragglers import StragglerSchedule, ambient_contention
from repro.distsim.telemetry import TrainingResult
from repro.distsim.timing import timing_for
from repro.errors import DivergenceError
from repro.mlcore.datasets import make_dataset
from repro.mlcore.models import make_model
from repro.obs.tracer import NULL_TRACER
from repro.rng import child_rng

__all__ = ["DistributedTrainer", "JobConfig", "Segment", "TrainingPlan"]

#: Ambient cloud-noise defaults (see stragglers.ambient_contention):
#: short contention bursts that slow a worker's compute 4x.  These are
#: the physical source of bursty gradient staleness in ASP.
AMBIENT_MEAN_INTERVAL = 60.0
AMBIENT_MEAN_DURATION = 6.0
AMBIENT_SLOW_FACTOR = 4.0


class DistributedTrainer:
    """Runs :class:`TrainingPlan` objects for one job on one cluster."""

    def __init__(
        self,
        job: JobConfig,
        cluster: ClusterSpec | Cluster,
        stragglers: StragglerSchedule | None = None,
        ambient_noise: bool = True,
        provisioning: ProvisioningModel | None = None,
        tracer=None,
    ):
        self.job = job
        self.cluster = cluster if isinstance(cluster, Cluster) else Cluster(cluster)
        self.provisioning = provisioning or ProvisioningModel(parallel=True)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.model = make_model(job.model)
        self.dataset = make_dataset(job.dataset)
        self.timing = timing_for(job.model, self.cluster.spec.gpu)

        schedule = stragglers or StragglerSchedule()
        # Kept separately so elastic re-simulation can re-slice the
        # external (fleet-contention) part of the schedule mid-run and
        # re-merge it with the job's own unchanged ambient noise.
        self.ambient: StragglerSchedule | None = None
        if ambient_noise:
            horizon = self._time_horizon()
            self.ambient = ambient_contention(
                self.cluster.spec.n_workers,
                horizon,
                child_rng(job.seed, "ambient"),
                mean_interval=AMBIENT_MEAN_INTERVAL,
                mean_duration=AMBIENT_MEAN_DURATION,
                slow_factor=AMBIENT_SLOW_FACTOR,
            )
            schedule = schedule.merged_with(self.ambient)
        self.stragglers = schedule

    def new_session(self) -> TrainingSession:
        """A fresh session (parameters re-initialised from the job seed)."""
        session = TrainingSession(
            job=self.job,
            model=self.model,
            dataset=self.dataset,
            timing=self.timing,
            cluster=self.cluster,
            stragglers=self.stragglers,
        )
        session.tracer = self.tracer
        return session

    def run(
        self,
        plan: TrainingPlan,
        stop: StopCondition | None = None,
        session: TrainingSession | None = None,
    ) -> TrainingResult:
        """Execute ``plan`` to completion (or divergence).

        ``stop`` is an optional per-update hook used by the online
        policies; when it fires the current segment ends early and the
        remaining budget continues with the next segment (the
        Sync-Switch controller builds richer behaviour on top via
        :meth:`run_segment`).
        """
        session = session or self.new_session()
        try:
            for index, segment in enumerate(plan.segments):
                target = self._segment_target(plan, index, session)
                steps = target - session.step
                if steps <= 0:
                    continue
                self.run_segment(session, segment, steps, stop=stop)
        except DivergenceError:
            pass
        return self.finalize(session, plan)

    def run_segment(
        self,
        session: TrainingSession,
        segment: Segment,
        steps: int,
        stop: StopCondition | None = None,
        charge_switch: bool | None = None,
    ) -> str:
        """Run one protocol segment for up to ``steps`` steps.

        Charges switch overhead when the protocol changes relative to
        the previously executed segment (override with
        ``charge_switch``).
        """
        previous = session.telemetry.segments[-1].protocol if (
            session.telemetry.segments
        ) else None
        if charge_switch is None:
            charge_switch = previous is not None and previous != segment.protocol
        if charge_switch:
            self.charge_switch_overhead(session)
        tracer = self.tracer
        cursor = len(session.telemetry.worker_durations) if tracer.enabled else 0
        session.telemetry.open_segment(
            segment.protocol, session.step, session.clock.now
        )
        engine = make_engine(segment.protocol)
        try:
            reason = engine.run(session, steps, segment.options, stop)
        finally:
            session.telemetry.close_segment(session.step, session.clock.now)
            if tracer.enabled:
                self._emit_segment(session, tracer, cursor)
        return reason

    def _emit_segment(self, session: TrainingSession, tracer, cursor: int) -> None:
        """Trace the segment just closed (and, at update detail, each
        worker update inside it, reconstructed from the telemetry
        worker-duration log starting at ``cursor``)."""
        record = session.telemetry.segments[-1]
        if tracer.wants("job"):
            tracer.span(
                record.protocol,
                "segment",
                record.start_time,
                record.duration,
                tid=1,
                args={
                    "start_step": record.start_step,
                    "end_step": record.end_step,
                },
            )
        if tracer.wants("update"):
            # Synchronous engines log (round_start, worker, duration);
            # asynchronous engines log (apply_end, worker, duration).
            synchronous = is_synchronous(record.protocol)
            name = "barrier" if synchronous else "push"
            entries = session.telemetry.worker_durations
            for index in range(cursor, len(entries)):
                t, worker, duration = entries[index]
                start = t if synchronous else t - duration
                tracer.span(name, name, start, duration, tid=3 + int(worker))

    def charge_switch_overhead(self, session: TrainingSession) -> None:
        """Checkpoint + reconfigure + restart cost of a protocol switch."""
        seconds = self.provisioning.switch_time(self.cluster.spec.n_workers)
        session.clock.advance(seconds)
        session.telemetry.record_overhead(session.clock.now, "switch", seconds)
        if self.tracer.wants("job"):
            self.tracer.span(
                "switch", "overhead", session.clock.now - seconds, seconds, tid=1
            )

    def charge_resize_overhead(self, session: TrainingSession, kind: str) -> None:
        """Elastic evict/restore reconfiguration cost."""
        if kind == "evict":
            seconds = self.provisioning.evict_time(self.cluster.spec.n_workers)
        else:
            seconds = self.provisioning.restore_time(self.cluster.spec.n_workers)
        session.clock.advance(seconds)
        session.telemetry.record_overhead(session.clock.now, kind, seconds)
        if self.tracer.wants("job"):
            self.tracer.span(
                kind, "overhead", session.clock.now - seconds, seconds, tid=1
            )

    def finalize(
        self, session: TrainingSession, plan: TrainingPlan
    ) -> TrainingResult:
        """Assemble the immutable result from session telemetry."""
        if not session.diverged and session.telemetry.eval_log:
            # Record a final evaluation so the curve covers the full run.
            last_step = session.telemetry.eval_log[-1][0]
            if last_step < session.step:
                session.evaluate_now()
        telemetry = session.telemetry
        tracker = session.tracker
        segment_summary = tuple(
            {
                "protocol": record.protocol,
                "start_step": record.start_step,
                "end_step": record.end_step,
                "duration": record.duration,
                "images": record.steps * self.job.batch_size,
            }
            for record in telemetry.segments
        )
        return TrainingResult(
            plan=plan.describe(),
            seed=self.job.seed,
            n_workers=self.cluster.spec.n_workers,
            total_steps=self.job.total_steps,
            completed_steps=session.step,
            total_time=session.clock.now,
            diverged=session.diverged,
            diverged_step=session.diverged_step,
            converged=tracker.converged,
            converged_accuracy=tracker.converged_accuracy,
            reported_accuracy=(
                None if session.diverged else tracker.reported_accuracy()
            ),
            best_accuracy=tracker.best_accuracy,
            final_loss=session.last_loss,
            eval_steps=tuple(step for step, _, _ in telemetry.eval_log),
            eval_times=tuple(time for _, time, _ in telemetry.eval_log),
            eval_accuracies=tuple(acc for _, _, acc in telemetry.eval_log),
            loss_steps=tuple(step for step, _, _ in telemetry.loss_log),
            loss_values=tuple(loss for _, _, loss in telemetry.loss_log),
            segment_summary=segment_summary,
            staleness=telemetry.staleness_summary(),
            switch_count=telemetry.switch_count,
            total_overhead=telemetry.total_overhead,
            images_processed=telemetry.images_processed,
        )

    def _segment_target(
        self, plan: TrainingPlan, index: int, session: TrainingSession
    ) -> int:
        """Cumulative step target after plan segment ``index``."""
        cumulative = sum(s.fraction for s in plan.segments[: index + 1])
        if index == len(plan.segments) - 1:
            return self.job.total_steps
        return int(round(cumulative * self.job.total_steps))

    def _time_horizon(self) -> float:
        """Generous upper bound on simulated run time (for noise horizon)."""
        n = self.cluster.spec.n_workers
        batch = self.job.batch_size
        worst_round = (
            self.timing.mean_compute_time(batch) * AMBIENT_SLOW_FACTOR
            + self.timing.sync_overhead(n)
        )
        return self.job.total_steps / n * worst_round * 1.5 + 600.0
