"""Property-based tests for the datacenter trace generator.

Each property carries ``@example`` regression inputs — cases that
exercise known edge branches (the ``alpha == 1`` Pareto form, single
jobs, degenerate bounds) — so they replay on every run regardless of
where hypothesis explores.
"""

import json

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.setups import SETUPS
from repro.fleet.workload import (
    DEFAULT_TENANT_TIERS,
    SYNC_POLICIES,
    TRACE_SCENARIOS,
    JobRequest,
    TenantTier,
    TraceScenario,
    assign_shards,
    bounded_pareto,
    trace_stream,
)

SCENARIO = TRACE_SCENARIOS["trace"]

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestTraceStream:
    @given(seed=seeds, n_jobs=st.integers(min_value=1, max_value=48))
    @example(seed=0, n_jobs=48)
    @example(seed=1337, n_jobs=1)
    @settings(max_examples=25, deadline=None)
    def test_arrivals_non_decreasing_ids_sequential(self, seed, n_jobs):
        stream = trace_stream(SCENARIO, 0.01, seed, n_jobs=n_jobs)
        assert len(stream) == n_jobs
        arrivals = [request.arrival for request in stream]
        assert arrivals[0] >= 0.0
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert [request.job_id for request in stream] == list(range(n_jobs))

    @given(seed=seeds, n_jobs=st.integers(min_value=1, max_value=48))
    @example(seed=0, n_jobs=48)
    @settings(max_examples=25, deadline=None)
    def test_sizes_within_pareto_bounds_tiers_labelled(self, seed, n_jobs):
        stream = trace_stream(SCENARIO, 0.01, seed, n_jobs=n_jobs)
        names = {tier.name for tier in SCENARIO.tiers}
        for request in stream:
            assert SCENARIO.size_min <= request.steps_scale
            assert request.steps_scale <= SCENARIO.size_max
            assert request.tier in names

    @given(seed=seeds)
    @example(seed=0)
    @settings(max_examples=10, deadline=None)
    def test_stream_is_deterministic(self, seed):
        first = trace_stream(SCENARIO, 0.01, seed, n_jobs=12)
        second = trace_stream(SCENARIO, 0.01, seed, n_jobs=12)
        assert first == second


class TestBoundedPareto:
    @given(
        u=st.floats(min_value=0.0, max_value=1.0),
        alpha=st.floats(min_value=0.1, max_value=4.0),
        lo=st.floats(min_value=0.01, max_value=10.0),
        span=st.floats(min_value=0.0, max_value=100.0),
    )
    @example(u=0.5, alpha=1.0, lo=0.05, span=2.95)  # the alpha==1 form
    @example(u=1.0, alpha=1.6, lo=0.05, span=2.95)  # exact upper bound
    @example(u=0.0, alpha=1.6, lo=0.05, span=2.95)  # exact lower bound
    @example(u=0.7, alpha=1.6, lo=1.0, span=0.0)  # degenerate lo==hi
    @settings(max_examples=100, deadline=None)
    def test_samples_stay_within_bounds(self, u, alpha, lo, span):
        hi = lo + span
        value = bounded_pareto(u, alpha, lo, hi)
        assert lo <= value <= hi * (1.0 + 1e-12)
        assert bounded_pareto(0.0, alpha, lo, hi) == pytest.approx(lo)
        assert bounded_pareto(1.0, alpha, lo, hi) == pytest.approx(hi)

    @given(
        alpha=st.floats(min_value=0.1, max_value=4.0),
        lo=st.floats(min_value=0.01, max_value=10.0),
        span=st.floats(min_value=0.001, max_value=100.0),
    )
    @example(alpha=1.0, lo=0.05, span=2.95)
    @settings(max_examples=50, deadline=None)
    def test_inverse_cdf_is_monotone(self, alpha, lo, span):
        hi = lo + span
        grid = [i / 16 for i in range(17)]
        values = [bounded_pareto(u, alpha, lo, hi) for u in grid]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_rejects_u_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            bounded_pareto(-0.1, 1.6, 0.05, 3.0)
        with pytest.raises(ConfigurationError):
            bounded_pareto(1.1, 1.6, 0.05, 3.0)


class TestTenantTiers:
    def test_default_fractions_sum_to_one(self):
        total = sum(tier.fraction for tier in DEFAULT_TENANT_TIERS)
        assert total == pytest.approx(1.0)

    @given(
        weights=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=5
        )
    )
    @example(weights=[0.3, 0.3, 0.4])
    @example(weights=[1.0])
    @settings(max_examples=25, deadline=None)
    def test_normalized_mix_accepted_unnormalized_rejected(self, weights):
        total = sum(weights)
        fractions = [weight / total for weight in weights]
        fractions[-1] = 1.0 - sum(fractions[:-1])
        tiers = tuple(
            TenantTier(name=f"t{index}", fraction=fraction)
            for index, fraction in enumerate(fractions)
        )
        scenario = TraceScenario(
            name="x", description="d", tiers=tiers, shards=1
        )
        assert sum(tier.fraction for tier in scenario.tiers) == pytest.approx(
            1.0
        )
        if len(tiers) > 1:  # halving every share breaks the sum, not (0, 1]
            halved = tuple(
                TenantTier(name=tier.name, fraction=tier.fraction / 2)
                for tier in tiers
            )
            with pytest.raises(ConfigurationError):
                TraceScenario(name="x", description="d", tiers=halved, shards=1)


class TestJobRequestRoundTrip:
    @given(
        job_id=st.integers(min_value=0, max_value=10**6),
        arrival=st.floats(min_value=0.0, max_value=1e9),
        setup_index=st.sampled_from(sorted(SETUPS)),
        n_workers=st.integers(min_value=1, max_value=64),
        sync_policy=st.sampled_from(sorted(SYNC_POLICIES)),
        deadline=st.none() | st.floats(min_value=1e-3, max_value=1e9),
        tier=st.none() | st.sampled_from(["prod", "batch", "dev"]),
        steps_scale=st.floats(min_value=1e-3, max_value=100.0),
    )
    @example(
        job_id=0,
        arrival=0.0,
        setup_index=1,
        n_workers=8,
        sync_policy="sync-switch",
        deadline=None,
        tier=None,
        steps_scale=1.0,
    )
    @example(
        job_id=9999,
        arrival=1234.5678901234567,
        setup_index=3,
        n_workers=16,
        sync_policy="asp",
        deadline=77.25,
        tier="prod",
        steps_scale=0.05,
    )
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_is_exact(
        self,
        job_id,
        arrival,
        setup_index,
        n_workers,
        sync_policy,
        deadline,
        tier,
        steps_scale,
    ):
        request = JobRequest(
            job_id=job_id,
            arrival=arrival,
            setup_index=setup_index,
            n_workers=n_workers,
            sync_policy=sync_policy,
            deadline=deadline,
            tier=tier,
            steps_scale=steps_scale,
        )
        decoded = JobRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert decoded == request


class TestAssignShards:
    @given(
        seed=seeds,
        n_shards=st.integers(min_value=1, max_value=8),
        n_jobs=st.integers(min_value=1, max_value=40),
    )
    @example(seed=0, n_shards=4, n_jobs=24)
    @example(seed=0, n_shards=1, n_jobs=5)
    @settings(max_examples=25, deadline=None)
    def test_sharding_partitions_the_stream(self, seed, n_shards, n_jobs):
        stream = trace_stream(SCENARIO, 0.01, seed, n_jobs=n_jobs)
        shards = assign_shards(stream, n_shards, seed)
        assert len(shards) == n_shards
        merged = sorted(
            (request for shard in shards for request in shard),
            key=lambda request: request.job_id,
        )
        assert merged == list(stream)
        for shard in shards:
            arrivals = [request.arrival for request in shard]
            assert arrivals == sorted(arrivals)

    @given(seed=seeds, n_jobs=st.integers(min_value=1, max_value=40))
    @example(seed=0, n_jobs=24)
    @settings(max_examples=10, deadline=None)
    def test_shard_of_a_job_ignores_stream_length(self, seed, n_jobs):
        # The job -> shard map derives from per-job child seeds, so a
        # longer stream never reshuffles the prefix's assignment.
        short = trace_stream(SCENARIO, 0.01, seed, n_jobs=n_jobs)
        longer = trace_stream(SCENARIO, 0.01, seed, n_jobs=n_jobs + 8)

        def shard_map(stream):
            assignment = {}
            for index, shard in enumerate(assign_shards(stream, 4, seed)):
                for request in shard:
                    assignment[request.job_id] = index
            return assignment

        short_map = shard_map(short)
        longer_map = shard_map(longer)
        assert all(
            longer_map[job_id] == shard for job_id, shard in short_map.items()
        )
