"""Tests for the N-segment schedule search (coordinate-descent)."""

import math

import pytest

from repro.core.search import (
    OfflineTimingSearch,
    ScheduleSearch,
    SearchConfig,
    boundary_fractions,
)
from repro.core.search.binary_search import (
    pick_best_schedule,
    validate_sequences,
)
from repro.errors import SearchError


def two_phase_trial(fraction, run):
    """Knee at 0.25: accurate at/above, degraded below."""
    accuracy = 0.92 if fraction >= 0.25 else 0.80
    return accuracy, 50.0 + 100.0 * fraction


def schedule_trial(protocols, fractions, run):
    """Schedule-aware knee: first segment carries the accuracy."""
    return two_phase_trial(fractions[0], run)


CONFIG = SearchConfig(beta=0.01, max_settings=4, runs_per_setting=1, bsp_runs=2)


class TestBoundaryFractions:
    def test_telescopes_with_implicit_outer_bounds(self):
        assert boundary_fractions([0.25, 0.75]) == (0.25, 0.5, 0.25)

    def test_empty_boundaries_is_single_segment(self):
        assert boundary_fractions([]) == (1.0,)

    def test_all_ones_is_opener_only(self):
        assert boundary_fractions([1.0, 1.0]) == (1.0, 0.0, 0.0)

    def test_dyadic_boundaries_are_bit_exact(self):
        fractions = boundary_fractions([0.0625, 0.5])
        assert sum(fractions) == 1.0
        assert fractions == (0.0625, 0.4375, 0.5)


class TestValidateSequences:
    def test_known_monotone_sequences_pass(self):
        assert validate_sequences((("bsp", "ssp", "asp"),)) == (
            ("bsp", "ssp", "asp"),
        )

    def test_reversed_precision_rejected(self):
        with pytest.raises(SearchError):
            validate_sequences((("asp", "bsp"),))

    def test_repeated_protocol_rejected(self):
        with pytest.raises(SearchError):
            validate_sequences((("bsp", "bsp"),))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SearchError):
            validate_sequences((("bsp", "allreduce"),))

    def test_empty_rejected(self):
        with pytest.raises(SearchError):
            validate_sequences(())
        with pytest.raises(SearchError):
            validate_sequences(((),))

    def test_mixed_openers_rejected(self):
        """All candidates must share the opener that sets the target."""
        with pytest.raises(SearchError):
            validate_sequences((("bsp", "asp"), ("osp", "asp")))

    def test_new_engines_are_schedulable(self):
        validate_sequences((("osp", "casp"),))
        validate_sequences((("bsp", "ssp", "casp"),))


class TestTwoPhaseSpecialCase:
    """N=2 bsp,asp must reproduce OfflineTimingSearch verbatim."""

    def test_same_trial_stream_and_result(self):
        offline = OfflineTimingSearch(two_phase_trial, CONFIG).search()
        schedule = ScheduleSearch(schedule_trial, CONFIG).search()
        assert schedule.protocols == ("bsp", "asp")
        assert schedule.switch_fraction == offline.switch_fraction
        assert schedule.fractions[0] == offline.switch_fraction
        assert schedule.target_accuracy == offline.target_accuracy
        assert schedule.search_time == pytest.approx(offline.search_time)
        assert [
            (t.fractions[0], t.run_index, t.accuracy, t.time, t.valid)
            for t in schedule.trials
        ] == [
            (t.switch_fraction, t.run_index, t.accuracy, t.time, t.valid)
            for t in offline.trials
        ]

    def test_supplied_target_skips_opener_runs(self):
        config = SearchConfig(
            beta=0.01, max_settings=3, runs_per_setting=1,
            target_accuracy=0.92,
        )
        offline = OfflineTimingSearch(two_phase_trial, config).search()
        schedule = ScheduleSearch(schedule_trial, config).search()
        assert schedule.fractions[0] == offline.switch_fraction
        assert schedule.n_sessions == offline.n_sessions == 3


class TestCoordinateDescent:
    def test_three_segment_schedule_found(self):
        """Each boundary gets its own halving run in [prev, 1.0]."""

        def trial(protocols, fractions, run):
            # Accurate iff >=25% precise opener AND the tail (last
            # segment) covers at least half the budget.
            bsp = fractions[0]
            tail = fractions[-1]
            good = bsp >= 0.25 and (len(fractions) == 1 or tail <= 0.75)
            accuracy = 0.92 if good else 0.80
            time = 50.0 + 100.0 * (1.0 - tail)
            return accuracy, time

        result = ScheduleSearch(
            trial, CONFIG, sequences=(("bsp", "ssp", "asp"),)
        ).search()
        assert result.protocols == ("bsp", "ssp", "asp")
        assert len(result.fractions) == 3
        assert sum(result.fractions) == pytest.approx(1.0)
        assert result.fractions[0] >= 0.25
        # Boundaries are monotone: every segment is non-negative.
        assert all(value >= 0.0 for value in result.fractions)

    def test_best_sequence_wins_on_time(self):
        """Candidate enumeration prices each sequence's final vector."""

        def trial(protocols, fractions, run):
            accuracy = 0.92 if fractions[0] >= 0.25 else 0.80
            # The 3-segment sequence is strictly faster when accurate.
            time = 100.0 if len(protocols) == 3 else 200.0
            return accuracy, time

        result = ScheduleSearch(
            trial,
            CONFIG,
            sequences=(("bsp", "asp"), ("bsp", "ssp", "asp")),
        ).search()
        assert result.protocols == ("bsp", "ssp", "asp")
        assert len(result.candidates) == 2
        labels = {candidate.protocols for candidate in result.candidates}
        assert labels == {("bsp", "asp"), ("bsp", "ssp", "asp")}

    def test_never_good_schedule_prices_with_opener_fallback(self):
        def trial(protocols, fractions, run):
            return (0.92 if fractions == (1.0, 0.0) else 0.5), 100.0

        result = ScheduleSearch(trial, CONFIG).search()
        # No candidate setting was ever accepted: boundary stays at 1.0
        # (all-opener) and the price falls back to the opener-run mean.
        assert result.fractions == (1.0, 0.0)
        assert result.expected_time == pytest.approx(100.0)


class TestPickBestSchedule:
    def test_fallback_is_infinite_without_opener_runs(self):
        best, prices = pick_best_schedule(
            (("bsp", "asp"),), ((1.0, 0.0),), [], None
        )
        assert best == 0
        assert prices[0] == math.inf

    def test_ties_break_toward_earlier_sequence(self):
        sequences = (("bsp", "asp"), ("bsp", "ssp"))
        finals = ((0.5, 0.5), (0.5, 0.5))
        best, prices = pick_best_schedule(sequences, finals, [], 10.0)
        assert best == 0
        assert prices == (10.0, 10.0)
