"""Regenerates the paper's Table VI.

Full search cost/performance analysis for setup 3 (14 settings).

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import table_6


def bench_tab06_search_full_setup3(benchmark, runner, emit):
    report = benchmark.pedantic(
        table_6, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "tab06_search_full_setup3")
    assert report.rows, "artifact produced no measured rows"
