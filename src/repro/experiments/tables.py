"""Tables I and III: end-to-end summary and framework overhead."""

from __future__ import annotations

from repro.core.runtime import ParallelActuator, SequentialActuator
from repro.experiments.aggregate import (
    accuracy_stats,
    divergence_rate,
    mean_time_to_accuracy,
    time_stats,
)
from repro.experiments.reporting import Report
from repro.experiments.runner import ExperimentRunner
from repro.experiments.setups import SETUPS

__all__ = ["table_1", "table_3", "TTA_THRESHOLD_FACTOR"]

#: TTA threshold = factor * mean BSP converged accuracy.  The paper uses
#: the BSP mean itself; the simulator's per-run accuracy noise is larger
#: than the paper's, so a 0.5% grace keeps TTA defined for runs that
#: converge marginally below the BSP mean (documented in EXPERIMENTS.md).
TTA_THRESHOLD_FACTOR = 0.995


def table_1(runner: ExperimentRunner) -> Report:
    """Table I: setups, policies, throughput and TTA speedups."""
    runner.prefetch(
        [
            (SETUPS[index], {"kind": "switch", "percent": percent})
            for index in (1, 2, 3)
            for percent in (100.0, 0.0, SETUPS[index].policy_percent)
        ]
    )
    rows = []
    for index in (1, 2, 3):
        setup = SETUPS[index]
        bsp = runner.run_many(setup, {"kind": "switch", "percent": 100.0})
        asp = runner.run_many(setup, {"kind": "switch", "percent": 0.0})
        sync = runner.run_many(
            setup, {"kind": "switch", "percent": setup.policy_percent}
        )
        bsp_time = time_stats(bsp)["time_mean"]
        asp_failed = divergence_rate(asp) == 1.0
        asp_time = None if asp_failed else time_stats(asp)["time_mean"]
        sync_time = time_stats(sync)["time_mean"]

        bsp_accuracy = accuracy_stats(bsp)["accuracy_mean"]
        threshold = TTA_THRESHOLD_FACTOR * bsp_accuracy
        tta_bsp, _ = mean_time_to_accuracy(bsp, threshold)
        tta_sync, _ = mean_time_to_accuracy(sync, threshold)

        rows.append(
            {
                "setup": index,
                "workload": setup.workload,
                "cluster": f"{setup.n_workers} x K80 (sim)",
                "policy": f"P{index}: ([BSP, ASP], {setup.policy_percent:g}%)",
                "speedup_vs_asp": (
                    "failed"
                    if asp_failed
                    else (asp_time / sync_time if sync_time else None)
                ),
                "speedup_vs_bsp": (
                    bsp_time / sync_time if sync_time and bsp_time else None
                ),
                "tta_speedup_vs_bsp": (
                    tta_bsp / tta_sync if tta_bsp and tta_sync else None
                ),
            }
        )
    paper_rows = [
        {
            "setup": index,
            "policy": f"P{index}: ([BSP, ASP], {SETUPS[index].policy_percent:g}%)",
            "speedup_vs_asp": SETUPS[index].paper["throughput_vs_asp"]
            or "failed",
            "speedup_vs_bsp": SETUPS[index].paper["speedup_vs_bsp"],
            "tta_speedup_vs_bsp": SETUPS[index].paper["tta_speedup_vs_bsp"],
        }
        for index in (1, 2, 3)
    ]
    return Report(
        ident="Table I",
        title="Experiment setups, timing policies and speedups",
        columns=[
            "setup",
            "workload",
            "cluster",
            "policy",
            "speedup_vs_asp",
            "speedup_vs_bsp",
            "tta_speedup_vs_bsp",
        ],
        rows=rows,
        paper_rows=paper_rows,
        notes=[
            "speedups are total-training-time ratios for the same step "
            "budget (the paper's 'throughput speedup')",
            f"TTA threshold: {TTA_THRESHOLD_FACTOR} x mean BSP converged "
            "accuracy per setup",
        ],
    )


def table_3(runner: ExperimentRunner) -> Report:
    """Table III: initialization and switching overhead.

    Model values are produced by the calibrated provisioning model at
    scale 1 (the paper's absolute seconds); the switch-overhead share of
    total training time is measured from actual Sync-Switch runs.
    """
    rows = []
    for n_workers in (8, 16):
        for actuator, label in (
            (SequentialActuator(), "Sequential"),
            (ParallelActuator(), "Parallel (Ours)"),
        ):
            init = actuator.init_time(n_workers)
            switch = actuator.switch_time(n_workers)
            rows.append(
                {
                    "cluster": f"{n_workers} K80",
                    "actuator": label,
                    "init_s": init,
                    "switching_s": switch,
                    "total_s": init + switch,
                }
            )
    # Measured share of switching overhead in an actual P1 run.
    setup = SETUPS[1]
    sync = runner.run_many(
        setup, {"kind": "switch", "percent": setup.policy_percent}
    )
    shares = [
        run.total_overhead / run.total_time
        for run in sync
        if not run.diverged and run.total_time > 0
    ]
    share = sum(shares) / len(shares) if shares else None
    return Report(
        ident="Table III",
        title="Sync-Switch overhead (initialization + protocol switching)",
        columns=["cluster", "actuator", "init_s", "switching_s", "total_s"],
        rows=rows,
        paper_rows=[
            {"cluster": "8 K80", "actuator": "Sequential", "init_s": 157,
             "switching_s": 90, "total_s": 247},
            {"cluster": "8 K80", "actuator": "Parallel (Ours)", "init_s": 90,
             "switching_s": 36, "total_s": 126},
            {"cluster": "16 K80", "actuator": "Sequential", "init_s": 268,
             "switching_s": 165, "total_s": 433},
            {"cluster": "16 K80", "actuator": "Parallel (Ours)", "init_s": 128,
             "switching_s": 53, "total_s": 181},
        ],
        notes=[
            (
                f"measured switch overhead in P1 runs: {share * 100:.1f}% of "
                "total training time"
                if share is not None
                else "no overhead share measured"
            ),
            "paper: switching overhead as low as 36 s (~1.7% of training "
            "time), growing sub-linearly with cluster size",
        ],
    )
