"""D002 allowlist fixture: obs export paths may stamp wall time."""

import time

exported_at = time.time()  # allowed: repro/obs/ is exempt
