"""Tests for the fleet-search tuning grid driver and its artifact.

The satellite acceptance check lives here: the same seed yields an
identical ``fleet_tuning_summary`` payload whether the grid executes
inline (``jobs=1``) or across a process pool (``jobs=2``).
"""

import json
import math

import pytest

from repro.experiments import ARTIFACTS
from repro.experiments.fleet import (
    DEFAULT_TUNING_SCENARIOS,
    confidence_interval95,
    fleet_tuning_report,
    tuning_grid,
    tuning_summary_payload,
    write_tuning_summary,
)
from repro.fleet import FLEET_SCENARIOS, FleetSummary, JobRequest

SCALE = 0.008

#: Cheap tuning stream: setup 3 searches with exactly two trial jobs,
#: and the late second arrival reuses the tuned policy.
TRACE = (
    JobRequest(job_id=0, arrival=0.0, setup_index=3, n_workers=16),
    JobRequest(job_id=1, arrival=5_000.0, setup_index=3, n_workers=16),
)


def small_grid(cache_dir, jobs=None, seeds=1):
    return tuning_grid(
        scenarios=("trace",),
        seeds=seeds,
        scale=SCALE,
        scheduler="fifo",
        trace=TRACE,
        jobs=jobs,
        cache_dir=cache_dir,
    )


class TestConfidenceInterval:
    def test_single_sample_has_zero_width(self):
        assert confidence_interval95([3.5]) == (3.5, 0.0)

    def test_known_small_sample(self):
        mean, half = confidence_interval95([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        # t(0.975, df=2) = 4.303, s = 1, n = 3.
        assert half == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval95([])


class TestTuningGrid:
    def test_grid_covers_modes_and_seeds(self, tmp_path):
        grid = small_grid(tmp_path, seeds=1)
        assert set(grid) == {("trace", "bsp", 0), ("trace", "tuned", 0)}
        for summary in grid.values():
            assert isinstance(summary, FleetSummary)
        assert grid[("trace", "tuned", 0)].n_search_jobs == 2
        assert grid[("trace", "bsp", 0)].n_search_jobs == 0

    def test_bsp_baseline_rewrites_trace_policies(self, tmp_path):
        # A trace fixes each job's policy, so the baseline cell must
        # rewrite the jobs to static BSP — otherwise the "bsp" rows
        # would silently serve the trace's own sync-switch policies.
        grid = small_grid(tmp_path, seeds=1)
        baseline = grid[("trace", "bsp", 0)]
        assert all(
            record.sync_policy == "bsp" and record.percent == 100.0
            for record in baseline.jobs
        )
        tuned = grid[("trace", "tuned", 0)]
        stream = [r for r in tuned.jobs if r.kind == "train"]
        assert all(r.sync_policy == "sync-switch" for r in stream)

    def test_identical_summary_at_jobs_1_and_jobs_n(
        self, tmp_path_factory
    ):
        """Acceptance: same seed => identical fleet_tuning_summary
        payload at jobs=1 and jobs=N (fresh caches for both)."""
        serial = small_grid(tmp_path_factory.mktemp("serial"), jobs=1)
        parallel = small_grid(tmp_path_factory.mktemp("parallel"), jobs=2)
        payload_serial = tuning_summary_payload(
            serial, ("trace",), 1, SCALE, "fifo"
        )
        payload_parallel = tuning_summary_payload(
            parallel, ("trace",), 1, SCALE, "fifo"
        )
        assert payload_serial == payload_parallel
        assert {key: summary.to_dict() for key, summary in serial.items()} == {
            key: summary.to_dict() for key, summary in parallel.items()
        }

    def test_cached_cells_not_resimulated(self, tmp_path, monkeypatch):
        import repro.experiments.fleet as fleet_module

        first = small_grid(tmp_path)

        def explode(config):
            raise AssertionError("cache miss: tuning cell resimulated")

        monkeypatch.setattr(fleet_module, "simulate_fleet", explode)
        again = small_grid(tmp_path)
        assert {key: summary.to_dict() for key, summary in again.items()} == {
            key: summary.to_dict() for key, summary in first.items()
        }

    def test_tuned_cells_cache_separately_from_plain(self, tmp_path):
        # A tuned sync-switch cell and an untuned one must never share
        # a cache key even with otherwise identical parameters.
        from repro.experiments.fleet import FleetRunRequest

        tuned = FleetRunRequest("rush", "fifo", "sync-switch", tune=True)
        plain = FleetRunRequest("rush", "fifo", "sync-switch", tune=False)
        assert tuned.key(SCALE) != plain.key(SCALE)


class TestTuningSummaryPayload:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        grid = small_grid(tmp_path_factory.mktemp("payload"), seeds=2)
        return tuning_summary_payload(grid, ("trace",), 2, SCALE, "fifo")

    def test_shape(self, payload):
        assert payload["seeds"] == 2
        entry = payload["scenarios"]["trace"]
        for mode in ("bsp", "tuned"):
            block = entry[mode]
            assert len(block["per_seed_jct"]) == 2
            assert block["ci95"] >= 0.0
        assert "classes" in entry["tuned"]
        assert "search_time_mean" in entry["tuned"]
        assert entry["tuned_speedup_x"] is not None

    def test_classes_aggregated_across_seeds(self, payload):
        classes = payload["scenarios"]["trace"]["tuned"]["classes"]
        assert len(classes) == 1
        row = classes[0]
        assert row["job_class"] == "exp3x16"
        assert len(row["tuned_percent_per_seed"]) == 2
        assert len(row["breakeven_recurrence_per_seed"]) == 2

    def test_payload_is_json_serializable(self, payload, tmp_path):
        target = write_tuning_summary(payload, path=tmp_path / "tuning.json")
        loaded = json.loads(target.read_text(encoding="utf-8"))
        assert loaded == json.loads(json.dumps(payload))

    def test_report_rows(self, tmp_path_factory):
        grid = small_grid(tmp_path_factory.mktemp("report"), seeds=1)
        payload = tuning_summary_payload(grid, ("trace",), 1, SCALE, "fifo")
        report = fleet_tuning_report(payload)
        assert [row["mode"] for row in report.rows] == ["bsp", "tuned"]
        tuned_row = report.rows[1]
        assert tuned_row["search_s"] is not None
        assert tuned_row["speedup_x"] is not None


class TestArtifactRegistration:
    def test_fleet_search_registered(self):
        assert "fleet-search" in ARTIFACTS

    def test_default_scenarios_exist(self):
        for name in DEFAULT_TUNING_SCENARIOS:
            assert name in FLEET_SCENARIOS
