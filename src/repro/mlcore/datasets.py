"""Synthetic CIFAR-like classification datasets.

The paper trains on CIFAR-10 and CIFAR-100 (60K 32x32 images each; the
key difference is 10 vs 100 classes — Section VI-A).  Real image data is
unavailable offline and convolutional training is outside the CPU
budget, so this module generates structurally similar tasks:

* inputs are dense Gaussian vectors (stand-ins for image features),
* labels come from a random *nonlinear teacher network*, so the decision
  boundary is non-convex and learnable by the residual MLP student,
* class-score (Gumbel) noise plus label flips bound the achievable test
  accuracy, producing a genuine generalisation gap, and
* the train split is finite, so training loss can be driven far below
  population loss — the property the paper's theoretical explanation
  (Remarks A.1/A.2) relies on.

``cifar10-sim`` / ``cifar100-sim`` mirror the 10-way and 100-way tasks;
the 100-way task is harder and converges to a much lower accuracy, as in
the paper (0.92 vs 0.75 ballpark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import child_rng

__all__ = [
    "DatasetConfig",
    "SyntheticDataset",
    "ShardIndexStream",
    "make_dataset",
    "DATASET_REGISTRY",
]


class ShardIndexStream:
    """Chunked pre-draws of one worker's shard sample indices.

    ``Generator.integers`` fills vectorized draws from the same stream
    in the same order as repeated smaller draws, so serving mini-batch
    index blocks out of a pre-drawn chunk is bit-identical to drawing
    per batch — while paying the Generator call overhead once per
    ``chunk`` indices.  :meth:`snapshot`/:meth:`restore` capture the
    exact stream position so an eagerly drawn batch can be rewound
    (see :class:`repro.distsim.engines.base.GradientBatcher`).
    """

    __slots__ = (
        "_rng", "_lo", "_hi", "_chunk", "_buffer", "_position",
        "_state_after_fill",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        lo: int,
        hi: int,
        chunk: int = 4096,
    ):
        if chunk <= 0:
            raise ConfigurationError("index chunk must be positive")
        self._rng = rng
        self._lo = lo
        self._hi = hi
        self._chunk = chunk
        self._buffer = np.empty(0, dtype=np.int64)
        self._position = 0
        # Generator state right after the current buffer was drawn —
        # captured once per refill so snapshot() is allocation-free.
        self._state_after_fill = rng.bit_generator.state

    def draw(self, size: int) -> np.ndarray:
        """The next ``size`` indices of this worker's sample stream."""
        if size <= 0:
            raise ConfigurationError("batch size must be positive")
        buffer, position = self._buffer, self._position
        end = position + size
        if end <= buffer.shape[0]:
            self._position = end
            return buffer[position:end]
        leftover = buffer[position:]
        need = size - leftover.shape[0]
        fresh = self._rng.integers(
            self._lo, self._hi, size=max(self._chunk, need)
        )
        self._state_after_fill = self._rng.bit_generator.state
        self._buffer = fresh
        self._position = need
        if leftover.shape[0] == 0:
            return fresh[:need]
        return np.concatenate([leftover, fresh[:need]])

    def snapshot(self) -> tuple:
        """Exact stream position (buffer, offset, post-fill state)."""
        return (self._buffer, self._position, self._state_after_fill)

    def restore(self, snapshot: tuple) -> None:
        """Rewind to a :meth:`snapshot` (undoes draws made since).

        Restoring the post-fill generator state means any refill after
        the rewound position regenerates exactly the values it produced
        the first time.
        """
        self._buffer, self._position, state = snapshot
        self._state_after_fill = state
        self._rng.bit_generator.state = state


@dataclass(frozen=True)
class DatasetConfig:
    """Generation parameters for a synthetic classification task."""

    name: str
    n_classes: int
    input_dim: int
    train_size: int
    test_size: int
    teacher_hidden: int = 48
    score_noise: float = 0.25
    label_flip_prob: float = 0.02
    seed: int = 20210421

    def __post_init__(self):
        if min(self.n_classes, self.input_dim, self.train_size, self.test_size) <= 0:
            raise ConfigurationError("dataset sizes must be positive")
        if not 0.0 <= self.label_flip_prob < 1.0:
            raise ConfigurationError("label_flip_prob must be in [0, 1)")
        if self.score_noise < 0:
            raise ConfigurationError("score_noise must be non-negative")


class SyntheticDataset:
    """A fixed train/test split sampled from a random teacher network."""

    def __init__(self, config: DatasetConfig):
        self.config = config
        rng = child_rng(config.seed, f"dataset/{config.name}")
        teacher_w1 = rng.normal(
            0.0, 1.0 / np.sqrt(config.input_dim),
            size=(config.input_dim, config.teacher_hidden),
        )
        teacher_w2 = rng.normal(
            0.0, 2.0 / np.sqrt(config.teacher_hidden),
            size=(config.teacher_hidden, config.n_classes),
        )
        total = config.train_size + config.test_size
        inputs = rng.normal(0.0, 1.0, size=(total, config.input_dim))
        scores = np.maximum(inputs @ teacher_w1, 0.0) @ teacher_w2
        noisy = scores + config.score_noise * rng.gumbel(size=scores.shape)
        labels = noisy.argmax(axis=1)
        flips = rng.random(total) < config.label_flip_prob
        labels[flips] = rng.integers(0, config.n_classes, size=int(flips.sum()))

        inputs = inputs.astype(np.float32)
        self.x_train = inputs[: config.train_size]
        self.y_train = labels[: config.train_size]
        self.x_test = inputs[config.train_size :]
        self.y_test = labels[config.train_size :]
        self._shard_ranges: dict[tuple[int, int], tuple[int, int]] = {}

    @property
    def n_classes(self) -> int:
        """Number of label classes."""
        return self.config.n_classes

    @property
    def input_dim(self) -> int:
        """Input feature dimensionality."""
        return self.config.input_dim

    def batch(
        self, rng: np.random.Generator, size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample a training mini-batch (with replacement)."""
        if size <= 0:
            raise ConfigurationError("batch size must be positive")
        indices = rng.integers(0, self.config.train_size, size=size)
        return self.x_train[indices], self.y_train[indices]

    def shard_range(self, shard: int, n_shards: int) -> tuple[int, int]:
        """Contiguous ``[lo, hi)`` train-index range owned by ``shard``.

        Data parallelism partitions the training data across workers
        (paper Section II-A); every sample belongs to exactly one shard.
        Cached per ``(shard, n_shards)``: this runs once per simulated
        mini-batch.
        """
        cached = self._shard_ranges.get((shard, n_shards))
        if cached is not None:
            return cached
        if not 0 <= shard < n_shards:
            raise ConfigurationError(f"shard {shard} out of range for {n_shards}")
        base, extra = divmod(self.config.train_size, n_shards)
        lo = shard * base + min(shard, extra)
        hi = lo + base + (1 if shard < extra else 0)
        self._shard_ranges[(shard, n_shards)] = (lo, hi)
        return lo, hi

    def shard_indices(
        self,
        rng: np.random.Generator,
        size: int,
        shard: int,
        n_shards: int,
    ) -> np.ndarray:
        """Draw one mini-batch of train indices from a worker's shard.

        Split out of :meth:`shard_batch` so a synchronous round can
        concatenate every worker's indices and gather once.
        """
        if size <= 0:
            raise ConfigurationError("batch size must be positive")
        lo, hi = self.shard_range(shard, n_shards)
        return rng.integers(lo, hi, size=size)

    def shard_batch(
        self,
        rng: np.random.Generator,
        size: int,
        shard: int,
        n_shards: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample a mini-batch from one worker's data shard."""
        indices = self.shard_indices(rng, size, shard, n_shards)
        return self.x_train[indices], self.y_train[indices]

    def __repr__(self) -> str:
        return (
            f"SyntheticDataset({self.config.name!r}, "
            f"classes={self.n_classes}, train={self.config.train_size})"
        )


# Constants calibrated alongside MODEL_REGISTRY (see EXPERIMENTS.md):
# the 10-way task converges near the paper's CIFAR-10 regime and the
# 100-way task is markedly harder, like CIFAR-100.
DATASET_REGISTRY: dict[str, DatasetConfig] = {
    "cifar10-sim": DatasetConfig(
        name="cifar10-sim",
        n_classes=10,
        input_dim=24,
        train_size=20000,
        test_size=2000,
        teacher_hidden=12,
        score_noise=0.05,
        label_flip_prob=0.005,
    ),
    "cifar100-sim": DatasetConfig(
        name="cifar100-sim",
        n_classes=100,
        input_dim=48,
        train_size=20000,
        test_size=2000,
        teacher_hidden=24,
        score_noise=0.05,
        label_flip_prob=0.005,
    ),
}

_CACHE: dict[str, SyntheticDataset] = {}


def make_dataset(name: str) -> SyntheticDataset:
    """Instantiate (and memoise) a registered dataset by name.

    Generation is deterministic, so the cache only avoids recomputing
    the teacher forward pass on repeated harness runs.
    """
    if name not in DATASET_REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; registered: {sorted(DATASET_REGISTRY)}"
        )
    if name not in _CACHE:
        _CACHE[name] = SyntheticDataset(DATASET_REGISTRY[name])
    return _CACHE[name]
