"""Fleet-level tests for elastic re-simulation (``resim=exact``).

Pins the PR acceptance criteria:

* ``resim=exact`` with zero allocation changes is **bit-identical** to
  ``resim=stretch`` — full-summary equality at jobs=1 and jobs=N, plus
  sha256 golden hashes committed in
  ``tests/data/fleet_golden_hashes.json``;
* a preemption-heavy stream (rush under best-fit) shows measurably
  different per-job accuracy and JCT under ``resim=exact``, while its
  never-preempted jobs stay bit-identical.

The golden hashes are exact float bit patterns; like the distsim
golden suite, set ``REPRO_GOLDEN_SKIP=1`` on machines whose BLAS
rounds differently.  Regenerate after an intentional numeric change::

    PYTHONPATH=src python tests/fleet/test_resim.py regen
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.fleet import FleetConfig, FleetSummary, simulate_fleet

GOLDEN_PATH = (
    Path(__file__).resolve().parents[1] / "data" / "fleet_golden_hashes.json"
)
SCALE = 0.008

#: Preemption-free golden cells (FIFO never preempts): exact == stretch
#: == the committed hash, at a single-job and a multi-job stream.
GOLDEN_CELLS = {"jobs=1": 1, "jobs=4": 4}


def config(**overrides) -> FleetConfig:
    base = {
        "scenario": "rush",
        "scheduler": "fifo",
        "sync_policy": "sync-switch",
        "seed": 0,
        "scale": SCALE,
        "n_jobs": 4,
    }
    base.update(overrides)
    return FleetConfig(**base)


def summary_hash(summary: FleetSummary) -> str:
    payload = json.dumps(summary.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _skip_unless_golden_machine():
    if os.environ.get("REPRO_GOLDEN_SKIP", "") not in ("", "0"):
        pytest.skip("REPRO_GOLDEN_SKIP set (BLAS float bits differ here)")


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/fleet/test_resim.py regen`"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def preempted():
    """Exact and stretch summaries of a preemption-heavy stream."""
    return {
        mode: simulate_fleet(
            config(scheduler="best-fit", n_jobs=None, resim=mode)
        )
        for mode in ("exact", "stretch")
    }


class TestGoldenParity:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CELLS))
    def test_exact_matches_stretch_bitwise(self, name):
        """No allocation changes -> the two timeline models coincide."""
        n = GOLDEN_CELLS[name]
        exact = simulate_fleet(config(n_jobs=n, resim="exact"))
        stretch = simulate_fleet(config(n_jobs=n, resim="stretch"))
        assert exact.preemptions == 0 and exact.restores == 0
        assert exact.to_dict() == stretch.to_dict()

    @pytest.mark.parametrize("name", sorted(GOLDEN_CELLS))
    @pytest.mark.parametrize("resim", ["exact", "stretch"])
    def test_committed_golden_hash(self, name, resim, golden):
        _skip_unless_golden_machine()
        summary = simulate_fleet(
            config(n_jobs=GOLDEN_CELLS[name], resim=resim)
        )
        assert summary_hash(summary) == golden["hashes"][name], (
            f"{name} ({resim}): fleet summary changed vs the committed "
            "golden hash — the preemption-free fleet timeline is no "
            "longer bit-stable"
        )

    def test_exact_mode_is_reproducible(self):
        first = simulate_fleet(config(resim="exact"))
        second = simulate_fleet(config(resim="exact"))
        assert first.to_dict() == second.to_dict()


class TestPreemptedDelta:
    def test_stream_actually_preempts(self, preempted):
        assert preempted["exact"].preemptions > 0
        assert preempted["exact"].restores > 0
        assert (
            preempted["exact"].preemptions
            == preempted["stretch"].preemptions
        )

    def test_preempted_jobs_differ_measurably(self, preempted):
        """The bug being fixed: stretch reports the unpreempted run."""
        stretch = {job.job_id: job for job in preempted["stretch"].jobs}
        deltas = []
        for job in preempted["exact"].jobs:
            if job.preemptions == 0 and job.restores == 0:
                continue
            other = stretch[job.job_id]
            deltas.append(
                (abs(job.jct - other.jct), job.accuracy, other.accuracy)
            )
        assert deltas, "fixture must contain preempted jobs"
        assert any(delta > 0.1 for delta, _, _ in deltas)
        assert any(exact != legacy for _, exact, legacy in deltas), (
            "re-simulated tails must shift at least one reported accuracy"
        )

    def test_unpreempted_jobs_stay_identical(self, preempted):
        stretch = {job.job_id: job for job in preempted["stretch"].jobs}
        untouched = [
            job
            for job in preempted["exact"].jobs
            if job.preemptions == 0 and job.restores == 0
        ]
        assert untouched, "fixture must contain unpreempted jobs"
        for job in untouched:
            assert job.to_dict() == stretch[job.job_id].to_dict()

    def test_allocation_history_records_every_resize(self, preempted):
        for job in preempted["exact"].jobs:
            causes = [row["cause"] for row in job.allocations]
            assert causes[0] == "admit"
            assert causes.count("preempt") >= job.preemptions
            assert causes.count("restore") == job.restores
            times = [row["time"] for row in job.allocations]
            assert times == sorted(times)
            segments = job.allocation_segments()
            assert segments[0]["start"] == job.start
            assert segments[-1]["end"] == job.finish
            for span, nxt in zip(segments, segments[1:]):
                assert span["end"] == nxt["start"]

    def test_summary_roundtrip_keeps_allocations(self, preempted):
        summary = preempted["exact"]
        again = FleetSummary.from_dict(summary.to_dict())
        assert again.to_dict() == summary.to_dict()
        record = next(job for job in again.jobs if job.preemptions > 0)
        assert record.allocations


class TestContentionReslice:
    def test_empty_reslice_replaces_the_stale_slice(self):
        """A resize whose correct new slice is empty must not keep the
        admission-time slice of the old physical mapping alive."""
        from repro.distsim.stragglers import StragglerEvent, StragglerSchedule
        from repro.fleet import FleetSimulator, JobRequest

        trace = (
            JobRequest(job_id=0, arrival=0.0, setup_index=1, n_workers=8,
                       sync_policy="asp"),
        )
        simulator = FleetSimulator(
            config(
                scheduler="fifo", trace=trace, pool_size=16, n_jobs=None,
                contention=False,
            )
        )
        # One early burst on the job's last worker: present in the
        # admission slice, long gone by the resize instant.
        simulator.contention = StragglerSchedule(
            [StragglerEvent(worker=7, start=0.0, duration=0.5,
                            slow_factor=7.0)]
        )
        simulator._advance(0.0)
        simulator._queue.append(simulator.stream[0])
        simulator._schedule(0.0)
        job = simulator._running[0]
        assert any(
            event.slow_factor == 7.0
            for event in job.sim.session.stragglers.events
        )
        job.enter_asp(0.0)
        simulator._resize(job, 6, 2.0, "preempt")
        assert not any(
            event.slow_factor == 7.0
            for event in job.sim.session.stragglers.events
        ), "stale admission slice survived an empty re-slice"


class TestValidation:
    def test_unknown_resim_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            config(resim="approximate")


def _regenerate() -> None:
    hashes = {
        name: summary_hash(simulate_fleet(config(n_jobs=n, resim="exact")))
        for name, n in sorted(GOLDEN_CELLS.items())
    }
    import numpy as np

    # Read-modify-write: other suites (tests/fleet/test_trace_scale.py)
    # keep their own top-level sections in the same goldens file.
    payload = (
        json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        if GOLDEN_PATH.exists()
        else {}
    )
    payload.update(
        {
            "scenario": "rush",
            "scheduler": "fifo",
            "sync_policy": "sync-switch",
            "seed": 0,
            "scale": SCALE,
            "numpy": np.__version__,
            "hashes": hashes,
        }
    )
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {GOLDEN_PATH}")
    for name, value in hashes.items():
        print(f"  {name}: {value}")


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "regen":
        _regenerate()
    else:
        print(__doc__)
        sys.exit(2)
