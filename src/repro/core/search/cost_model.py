"""Monte-Carlo cost analysis of the binary search (Tables II/IV-VI, Fig. 16).

The paper replays its training logs through 1000 simulated searches per
*search setting* — ``(recurring, #BSP runs, #candidate runs)`` — and
reports four quantities per setting:

* **Search cost** — total time of every session trained during the
  search, in multiples of one static-BSP session.
* **Amortization** — recurrences needed before the per-recurrence time
  saving of the found policy pays for the search:
  ``cost / (1 - T_policy / T_BSP)``.
* **Effective training** — sessions that produced a valid model (within
  the accuracy threshold) per unit of search cost: search runs are not
  wasted work, they *are* training runs.
* **Success probability** — fraction of simulated searches returning
  the ground-truth switch point (the result of the search under
  noise-free mean accuracies).

The per-switch-point accuracy/time distributions come from a
:class:`ProfileModel` built from recorded experiment logs, with linear
interpolation between measured switch points (binary-search midpoints
under noisy paths can land between grid points).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.core.search.binary_search import (
    OfflineTimingSearch,
    SearchConfig,
)
from repro.errors import SearchError
from repro.rng import make_rng

__all__ = ["ProfileModel", "SearchSetting", "SearchCostReport", "SearchCostSimulator"]


@dataclass(frozen=True)
class SearchSetting:
    """One row of Tables II/IV-VI: (recurring, BSP runs, candidate runs)."""

    recurring: bool
    bsp_runs: int
    candidate_runs: int

    def __post_init__(self):
        if self.recurring and self.bsp_runs != 0:
            raise SearchError("recurring jobs reuse the known target; bsp_runs=0")
        if not self.recurring and self.bsp_runs < 1:
            raise SearchError("new jobs need at least one BSP run")
        if self.candidate_runs < 1:
            raise SearchError("candidate_runs must be >= 1")

    def label(self) -> str:
        """Paper notation, e.g. ``(No, 5, 5)``."""
        recurring = "Yes" if self.recurring else "No"
        return f"({recurring}, {self.bsp_runs}, {self.candidate_runs})"


class ProfileModel:
    """Accuracy/time distributions per switch fraction, from run logs.

    This is the reproduction's stand-in for the paper's recorded
    training logs, which Section VI-C replays through 1000 simulated
    searches per setting (Tables II/IV-VI, Fig. 16).

    ``samples`` maps a switch fraction in [0, 1] to a list of
    ``(accuracy, total_time)`` pairs (diverged runs: accuracy 0.0 and
    the time spent before divergence).  Queries at unmeasured fractions
    interpolate linearly between the nearest measured neighbours.
    """

    def __init__(self, samples: dict[float, list[tuple[float, float]]]):
        if not samples:
            raise SearchError("profile model needs at least one fraction")
        for fraction, runs in samples.items():
            if not 0.0 <= fraction <= 1.0:
                raise SearchError(f"fraction {fraction} out of [0, 1]")
            if not runs:
                raise SearchError(f"fraction {fraction} has no runs")
        self._fractions = sorted(samples)
        self._samples = {
            fraction: [(float(a), float(t)) for a, t in samples[fraction]]
            for fraction in self._fractions
        }

    @property
    def fractions(self) -> tuple[float, ...]:
        """Measured switch fractions."""
        return tuple(self._fractions)

    def mean_accuracy(self, fraction: float) -> float:
        """Interpolated mean converged accuracy at ``fraction``."""
        return self._interpolate(fraction, self._mean_acc)

    def mean_time(self, fraction: float) -> float:
        """Interpolated mean total training time at ``fraction``."""
        return self._interpolate(fraction, self._mean_time)

    def sample(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Draw one (accuracy, time) observation at ``fraction``.

        Draws from the empirical runs of the two neighbouring measured
        fractions, choosing the neighbour proportionally to proximity.
        """
        lo, hi, weight = self._neighbours(fraction)
        source = hi if rng.random() < weight else lo
        runs = self._samples[source]
        accuracy, time = runs[int(rng.integers(0, len(runs)))]
        return accuracy, time

    def bsp_mean_time(self) -> float:
        """Mean static-BSP time (the cost unit of the tables)."""
        return self._mean_time(max(self._fractions))

    def bsp_mean_accuracy(self) -> float:
        """Mean static-BSP converged accuracy (the search target)."""
        return self._mean_acc(max(self._fractions))

    # ------------------------------------------------------------------
    def _mean_acc(self, fraction: float) -> float:
        runs = self._samples[fraction]
        return sum(a for a, _ in runs) / len(runs)

    def _mean_time(self, fraction: float) -> float:
        runs = self._samples[fraction]
        return sum(t for _, t in runs) / len(runs)

    def _neighbours(self, fraction: float) -> tuple[float, float, float]:
        """Measured neighbours of ``fraction`` and the upper weight."""
        if not 0.0 <= fraction <= 1.0:
            raise SearchError(f"fraction {fraction} out of [0, 1]")
        fractions = self._fractions
        if fraction <= fractions[0]:
            return fractions[0], fractions[0], 0.0
        if fraction >= fractions[-1]:
            return fractions[-1], fractions[-1], 0.0
        index = bisect_left(fractions, fraction)
        lo, hi = fractions[index - 1], fractions[index]
        if hi == lo:
            return lo, hi, 0.0
        return lo, hi, (fraction - lo) / (hi - lo)

    def _interpolate(self, fraction: float, statistic) -> float:
        lo, hi, weight = self._neighbours(fraction)
        return (1.0 - weight) * statistic(lo) + weight * statistic(hi)


@dataclass(frozen=True)
class SearchCostReport:
    """Aggregate outcome of the Monte-Carlo replays for one setting.

    One row of Tables II/IV-VI: search cost (in static-BSP session
    multiples), amortization (recurrences to break even), effective
    training and success probability — plus the ground-truth switch
    point the setting is judged against.
    """

    setting: SearchSetting
    search_cost_x: float
    amortization_recurrences: float
    effective_training_x: float
    success_probability: float
    ground_truth_percent: float

    def row(self) -> dict:
        """Table row in the paper's column layout."""
        return {
            "setting": self.setting.label(),
            "search_cost": f"{self.search_cost_x:.2f}X",
            "amortized": f"{self.amortization_recurrences:.2f}",
            "effective_training": f"{self.effective_training_x:.2f}X",
            "success_probability": f"{self.success_probability * 100:.1f}%",
        }


class SearchCostSimulator:
    """Replays Algorithm 1 against a :class:`ProfileModel`.

    The Monte-Carlo engine behind Tables II/IV-VI and Fig. 16
    (Section VI-C): per search setting it simulates many noisy
    searches and aggregates their cost/outcome statistics into a
    :class:`SearchCostReport`.
    """

    def __init__(
        self,
        profile: ProfileModel,
        max_settings: int = 5,
        beta: float = 0.01,
        seed: int = 0,
    ):
        self.profile = profile
        self.max_settings = max_settings
        self.beta = beta
        self.seed = seed
        self._ground_truth = self._noise_free_search()

    @property
    def ground_truth_fraction(self) -> float:
        """Search outcome under noise-free mean accuracies."""
        return self._ground_truth

    def simulate(
        self, setting: SearchSetting, n_simulations: int = 1000
    ) -> SearchCostReport:
        """Monte-Carlo replay of one search setting."""
        if n_simulations < 1:
            raise SearchError("n_simulations must be >= 1")
        rng = make_rng(self.seed)
        bsp_time = self.profile.bsp_mean_time()
        bsp_accuracy = self.profile.bsp_mean_accuracy()

        costs = np.empty(n_simulations)
        valids = np.empty(n_simulations)
        successes = 0
        for sim in range(n_simulations):
            def trial(fraction: float, run: int) -> tuple[float, float]:
                return self.profile.sample(fraction, rng)

            config = SearchConfig(
                beta=self.beta,
                max_settings=self.max_settings,
                runs_per_setting=setting.candidate_runs,
                target_accuracy=bsp_accuracy if setting.recurring else None,
                bsp_runs=max(setting.bsp_runs, 1),
            )
            result = OfflineTimingSearch(trial, config).search()
            costs[sim] = result.search_time
            valids[sim] = result.valid_sessions
            if abs(result.switch_fraction - self._ground_truth) < 1e-9:
                successes += 1

        mean_cost_x = float(costs.mean()) / bsp_time
        policy_time = self.profile.mean_time(self._ground_truth)
        saving = max(1.0 - policy_time / bsp_time, 1e-9)
        return SearchCostReport(
            setting=setting,
            search_cost_x=mean_cost_x,
            amortization_recurrences=mean_cost_x / saving,
            effective_training_x=float(valids.mean()) / max(mean_cost_x, 1e-9),
            success_probability=successes / n_simulations,
            ground_truth_percent=self._ground_truth * 100.0,
        )

    def _noise_free_search(self) -> float:
        """Algorithm 1 on the mean curves (defines the ground truth)."""
        target = self.profile.bsp_mean_accuracy()

        def trial(fraction: float, run: int) -> tuple[float, float]:
            return (
                self.profile.mean_accuracy(fraction),
                self.profile.mean_time(fraction),
            )

        config = SearchConfig(
            beta=self.beta,
            max_settings=self.max_settings,
            runs_per_setting=1,
            target_accuracy=target,
        )
        return OfflineTimingSearch(trial, config).search().switch_fraction
