"""Hot-path benchmark harness: simulated training steps per second.

Every figure, search trial and fleet job funnels through the per-update
loop in :mod:`repro.distsim` + :mod:`repro.mlcore`, so its Python and
allocation overhead multiplies into everything the harness produces.
This module measures that loop directly:

* **per-engine steps/sec** — each protocol engine (bsp/asp/ssp/dssp)
  runs a fixed step budget on a standalone session (setup-1 workload,
  ambient noise on) and reports simulated training steps per wall-clock
  second;
* **end-to-end fig5b cell** — one cold-cache
  ``{"kind": "switch", "percent": 6.25}`` cell through the
  :class:`~repro.experiments.runner.ExperimentRunner`, the unit of work
  every sweep/search/fleet grid repeats;
* **machine calibration** — a fixed numpy matmul workload timed in the
  same process.  Steps/sec divided by the calibration score is a
  machine-relative number, which is what regression checks compare so a
  slower CI runner does not produce false alarms.

``results/hotpath_speedup.json`` (written by ``python -m repro bench
--record-speedup`` and committed) records the pre-optimization baseline
next to the current numbers and starts the repo's perf trajectory; the
CI perf-smoke job replays the quick benchmark and fails on a >25%
machine-relative regression.  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.distsim.cluster import ClusterSpec
from repro.distsim.engines import make_engine
from repro.distsim.job import JobConfig, Segment
from repro.distsim.trainer import DistributedTrainer
from repro.errors import ConfigurationError, DivergenceError
from repro.rng import make_rng

__all__ = [
    "ENGINES",
    "bench_engine",
    "bench_fig5b_cell",
    "bench_fleet_trace_cell",
    "calibration_score",
    "run_hotpath_bench",
    "check_regression",
    "speedup_payload",
    "render_hotpath_report",
    "DEFAULT_TOLERANCE",
]

ENGINES = ("bsp", "asp", "ssp", "dssp")

#: Benchmark rows: protocol engines on the canonical per-worker batch
#: (128, the scaled_job configuration) plus the *kernel regime* — ASP
#: and BSP at per-worker batch 16 (the paper keeps the global batch
#: fixed when dividing it across the cluster, Section IV-C / Fig. 8a),
#: where per-update simulation overhead rather than BLAS time
#: dominates.  The kernel rows are what the zero-copy rewrite targets;
#: ``asp-kernel`` is the headline ASP hot-path number.
BENCH_ROWS: dict[str, tuple[str, int]] = {
    "bsp": ("bsp", 128),
    "asp": ("asp", 128),
    "ssp": ("ssp", 128),
    "dssp": ("dssp", 128),
    "asp-kernel": ("asp", 16),
    "bsp-kernel": ("bsp", 16),
    # The kernel regime driven through DistributedTrainer.run_segment
    # with tracing *off* (the default NullTracer): measures that the
    # observability guards leave the hot path unchanged.  The check
    # compares it against the committed ``asp-kernel`` baseline
    # (see _BASELINE_ALIASES), so a tracing tax shows up as a perf
    # regression.
    "asp-tracer-off": ("asp", 16),
}

#: Rows measured through the full trainer path (segment bookkeeping +
#: disabled-tracer guards) rather than a bare ``engine.run``.
_TRAINER_ROWS = frozenset({"asp-tracer-off"})

#: Baseline row a current row is checked against when the baseline
#: payload predates the row itself.
_BASELINE_ALIASES = {"asp-tracer-off": "asp-kernel"}

#: Step budgets per row: enough updates for a stable wall-clock
#: measurement while keeping the full pass in the tens of seconds.
FULL_STEPS = {
    "bsp": 1024,
    "asp": 2048,
    "ssp": 2048,
    "dssp": 2048,
    "asp-kernel": 4096,
    "bsp-kernel": 4096,
    "asp-tracer-off": 4096,
}
QUICK_STEPS = {name: max(steps // 4, 256) for name, steps in FULL_STEPS.items()}

#: Allowed machine-relative steps/sec drop before the check fails.
DEFAULT_TOLERANCE = 0.25

_BENCH_WORKERS = 8
_BENCH_BATCH = 128


def _bench_job(
    total_steps: int, batch_size: int = _BENCH_BATCH, seed: int = 0
) -> JobConfig:
    """The setup-1-shaped job used by the engine benchmarks."""
    return JobConfig(
        model="resnet32-sim",
        dataset="cifar10-sim",
        total_steps=total_steps,
        batch_size=batch_size,
        base_lr=0.004,
        eval_every=max(total_steps // 4, 64),
        loss_log_every=max(total_steps // 16, 32),
        seed=seed,
    )


def bench_engine(
    protocol: str,
    steps: int,
    repeats: int = 3,
    seed: int = 0,
    batch_size: int = _BENCH_BATCH,
    via_trainer: bool = False,
) -> dict:
    """Steps/sec of one protocol engine over ``steps`` updates.

    Each repeat builds a fresh session (same seed — the measured work is
    identical) and times ``engine.run``; the best repeat is reported, as
    is conventional for wall-clock microbenchmarks.  ``via_trainer``
    times :meth:`~repro.distsim.trainer.DistributedTrainer.run_segment`
    instead — the engine loop plus segment bookkeeping and the
    disabled-tracing guards.
    """
    if protocol not in ENGINES:
        raise ConfigurationError(f"unknown engine {protocol!r}; known: {ENGINES}")
    if steps <= 0 or repeats <= 0:
        raise ConfigurationError("steps and repeats must be positive")
    job = _bench_job(steps, batch_size=batch_size, seed=seed)
    trainer = DistributedTrainer(job, ClusterSpec(n_workers=_BENCH_WORKERS))
    segment = Segment(protocol=protocol, fraction=1.0)
    best = None
    completed = 0
    for _ in range(repeats):
        session = trainer.new_session()
        start = time.perf_counter()
        try:
            if via_trainer:
                trainer.run_segment(session, segment, steps)
            else:
                make_engine(protocol).run(session, steps)
        except DivergenceError:
            pass  # steps/sec over the completed prefix is still valid
        elapsed = time.perf_counter() - start
        rate = session.step / elapsed if elapsed > 0 else 0.0
        if best is None or rate > best:
            best = rate
            completed = session.step
    return {
        "steps": completed,
        "batch_size": batch_size,
        "steps_per_sec": best,
        "elapsed_s": completed / best if best else 0.0,
    }


def bench_fig5b_cell(scale: float = 0.01, seed: int = 0) -> float:
    """Cold-cache wall-clock seconds of one fig-5b sweep cell.

    Runs the setup-1 ``switch @ 6.25%`` configuration through the
    experiment runner with a throwaway cache, i.e. exactly the unit of
    work that sweeps, searches and fleet grids repeat.
    """
    # Imported here: the runner pulls in the full experiments package,
    # which the lightweight engine benchmarks do not need.
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.setups import SETUPS

    with tempfile.TemporaryDirectory(prefix="repro-hotpath-") as cache:
        runner = ExperimentRunner(scale=scale, seeds=1, cache_dir=cache, jobs=1)
        start = time.perf_counter()
        runner.run(SETUPS[1], {"kind": "switch", "percent": 6.25}, seed)
        return time.perf_counter() - start


def bench_fleet_trace_cell(
    n_jobs: int = 32, shards: int = 2, seed: int = 0
) -> float:
    """Uncached wall-clock seconds of a small sharded trace-fleet run.

    Runs ``n_jobs`` jobs of the datacenter ``trace`` scenario through
    :func:`~repro.experiments.fleet.run_trace_scale` (heterogeneous
    pool, shard merge, invariant checker off) with caching disabled —
    the per-job unit of work the 10k-job fleet-scale runs repeat.
    """
    # Imported here: pulls in the fleet package, which the lightweight
    # engine benchmarks do not need.
    from repro.experiments.fleet import run_trace_scale

    start = time.perf_counter()
    run_trace_scale(
        n_jobs=n_jobs,
        shards=shards,
        seed=seed,
        jobs=1,
        cache_dir="off",
    )
    return time.perf_counter() - start


def calibration_score(repeats: int = 5) -> float:
    """Machine speed proxy: best matmul throughput of a fixed workload.

    Returns iterations/second of a 256x256 float32 matmul chain.  The
    regression check divides steps/sec by this score, so comparisons
    between the committed baseline and a differently-sized CI runner
    stay meaningful.
    """
    # make_rng(0) is bit-identical to the old direct default_rng(0)
    # call; routing through repro.rng keeps the tree D001-clean.
    a = make_rng(0).normal(size=(256, 256)).astype(np.float32)
    b = a.copy()
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(32):
            b = a @ b
            b *= 1e-3  # keep magnitudes bounded
        elapsed = time.perf_counter() - start
        best = max(best, 32 / elapsed)
    return best


def run_hotpath_bench(quick: bool = False, fig5b_scale: float = 0.01) -> dict:
    """Run the full hot-path benchmark and return the JSON payload."""
    budgets = QUICK_STEPS if quick else FULL_STEPS
    engines = {}
    for name, (protocol, batch_size) in BENCH_ROWS.items():
        engines[name] = bench_engine(
            protocol,
            budgets[name],
            repeats=1 if quick else 3,
            batch_size=batch_size,
            via_trainer=name in _TRAINER_ROWS,
        )
    return {
        "version": 1,
        "quick": quick,
        "workload": {
            "model": "resnet32-sim",
            "dataset": "cifar10-sim",
            "n_workers": _BENCH_WORKERS,
            "batch_size": _BENCH_BATCH,
        },
        "engines": engines,
        "fig5b_cell_s": bench_fig5b_cell(scale=fig5b_scale),
        "fleet_trace_cell_s": bench_fleet_trace_cell(
            n_jobs=16 if quick else 32
        ),
        "calibration": calibration_score(),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }


def _normalized(payload: dict) -> dict[str, float]:
    """Machine-relative steps/sec per engine (steps/sec / calibration)."""
    calibration = float(payload.get("calibration") or 0.0)
    if calibration <= 0:
        raise ConfigurationError("payload has no calibration score")
    return {
        name: entry["steps_per_sec"] / calibration
        for name, entry in payload["engines"].items()
    }


def check_regression(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Compare machine-relative steps/sec against a baseline payload.

    ``baseline`` may be a plain benchmark payload or a speedup artifact
    (in which case its ``optimized`` section is the reference).  Returns
    one message per engine whose normalized steps/sec dropped more than
    ``tolerance`` (empty list = pass).  Rows newer than the baseline
    check against their :data:`_BASELINE_ALIASES` stand-in (e.g.
    ``asp-tracer-off`` vs the committed ``asp-kernel``), so the
    tracing-off guard overhead is bounded by the same tolerance.
    """
    reference = baseline.get("optimized", baseline)
    current_norm = _normalized(current)
    baseline_norm = _normalized(reference)
    regressions = []
    for name, value in sorted(current_norm.items()):
        base_name = name if name in baseline_norm else _BASELINE_ALIASES.get(name)
        if base_name is None or base_name not in baseline_norm:
            continue
        base_value = baseline_norm[base_name]
        if base_value <= 0:
            continue
        ratio = value / base_value
        if ratio < 1.0 - tolerance:
            suffix = f" ({base_name})" if base_name != name else ""
            regressions.append(
                f"{name}: machine-relative steps/sec fell to {ratio:.2f}x "
                f"of baseline{suffix} (tolerance {1.0 - tolerance:.2f}x)"
            )
    return regressions


def speedup_payload(baseline: dict, optimized: dict) -> dict:
    """The committed ``results/hotpath_speedup.json`` structure."""
    speedup = {}
    for name, entry in optimized["engines"].items():
        base = baseline["engines"].get(name)
        if base and base["steps_per_sec"]:
            speedup[name] = entry["steps_per_sec"] / base["steps_per_sec"]
    if baseline.get("fig5b_cell_s") and optimized.get("fig5b_cell_s"):
        speedup["fig5b_cell"] = (
            baseline["fig5b_cell_s"] / optimized["fig5b_cell_s"]
        )
    if baseline.get("fleet_trace_cell_s") and optimized.get(
        "fleet_trace_cell_s"
    ):
        speedup["fleet_trace_cell"] = (
            baseline["fleet_trace_cell_s"] / optimized["fleet_trace_cell_s"]
        )
    return {
        "version": 1,
        "workload": optimized["workload"],
        "machine": optimized["machine"],
        "baseline": {
            "engines": baseline["engines"],
            "fig5b_cell_s": baseline.get("fig5b_cell_s"),
            "fleet_trace_cell_s": baseline.get("fleet_trace_cell_s"),
            "calibration": baseline.get("calibration"),
        },
        "optimized": {
            "engines": optimized["engines"],
            "fig5b_cell_s": optimized.get("fig5b_cell_s"),
            "fleet_trace_cell_s": optimized.get("fleet_trace_cell_s"),
            "calibration": optimized.get("calibration"),
        },
        "speedup": speedup,
    }


def render_hotpath_report(payload: dict) -> str:
    """Human-readable summary of one benchmark payload."""
    lines = [
        "hot-path benchmark "
        + ("(quick)" if payload.get("quick") else "(full)"),
        f"  workload    : {payload['workload']['model']} "
        f"x{payload['workload']['n_workers']} "
        f"batch {payload['workload']['batch_size']}",
    ]
    for name, entry in payload["engines"].items():
        lines.append(
            f"  {name:<11}: {entry['steps_per_sec']:>10.1f} steps/s "
            f"({entry['steps']} steps of batch "
            f"{entry.get('batch_size', _BENCH_BATCH)} "
            f"in {entry['elapsed_s']:.2f}s)"
        )
    lines.append(f"  fig5b cell  : {payload['fig5b_cell_s']:.2f}s cold-cache")
    if payload.get("fleet_trace_cell_s") is not None:
        lines.append(
            "  fleet trace : "
            f"{payload['fleet_trace_cell_s']:.2f}s for a sharded trace cell"
        )
    lines.append(f"  calibration : {payload['calibration']:.1f} matmul-iter/s")
    return "\n".join(lines)


def load_payload(path: str | Path) -> dict:
    """Read a benchmark or speedup JSON artifact."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def write_payload(payload: dict, path: str | Path) -> Path:
    """Write a JSON artifact (pretty-printed, trailing newline)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return target
