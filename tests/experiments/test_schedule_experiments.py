"""Experiments-layer coverage for N-segment schedule specs and requests."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fleet import FleetRunRequest
from repro.experiments.runner import ExperimentRunner
from repro.experiments.setups import SETUPS


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner(scale=0.008, seeds=1, cache_dir=tmp_path)


class TestScheduleSpec:
    def test_three_segment_spec_builds_matching_plan(self, runner):
        result = runner.run(
            SETUPS[1],
            {
                "kind": "schedule",
                "protocols": ["bsp", "ssp", "asp"],
                "fractions": [0.25, 0.25, 0.5],
            },
            0,
        )
        assert result.plan == "bsp:25% -> ssp:25% -> asp:50%"
        assert result.completed_steps >= 400

    def test_two_segment_schedule_matches_switch_spec(self, runner):
        """kind=schedule bsp,asp is the same simulation as kind=switch."""
        switch = runner.run(
            SETUPS[1], {"kind": "switch", "percent": 25.0}, 0
        )
        schedule = runner.run(
            SETUPS[1],
            {
                "kind": "schedule",
                "protocols": ["bsp", "asp"],
                "fractions": [0.25, 0.75],
            },
            0,
        )
        assert schedule.plan == switch.plan
        assert schedule.total_time == switch.total_time
        assert schedule.eval_accuracies == switch.eval_accuracies

    def test_casp_tail_schedule_runs(self, runner):
        result = runner.run(
            SETUPS[1],
            {
                "kind": "schedule",
                "protocols": ["bsp", "casp"],
                "fractions": [0.25, 0.75],
            },
            0,
        )
        assert result.plan == "bsp:25% -> casp:75%"

    def test_reversed_schedule_rejected(self, runner):
        with pytest.raises(ConfigurationError):
            runner.run(
                SETUPS[1],
                {
                    "kind": "schedule",
                    "protocols": ["asp", "bsp"],
                    "fractions": [0.5, 0.5],
                },
                0,
            )


class TestFleetRunRequestSchedule:
    def test_cache_key_distinguishes_schedules(self):
        base = dict(
            scenario="rush", scheduler="fifo", sync_policy="sync-switch",
            seed=0,
        )
        plain = FleetRunRequest(**base)
        scheduled = FleetRunRequest(
            **base,
            protocols=("bsp", "ssp", "asp"),
            fractions=(0.25, 0.25, 0.5),
        )
        assert plain.key(0.008) != scheduled.key(0.008)

    def test_config_carries_schedule_through(self):
        request = FleetRunRequest(
            scenario="rush", scheduler="fifo", sync_policy="sync-switch",
            seed=0,
            protocols=("bsp", "ssp", "asp"),
            fractions=(0.25, 0.25, 0.5),
        )
        config = request.config(0.008)
        assert config.protocols == ("bsp", "ssp", "asp")
        assert config.fractions == (0.25, 0.25, 0.5)
