"""Tests for the fleet scenario driver and its executor integration."""

import json

import pytest

import repro.experiments.fleet as fleet_module
from repro.experiments import ARTIFACTS, ExperimentRunner, prefetch_union
from repro.experiments.fleet import (
    FleetRunRequest,
    fleet_grid,
    fleet_report,
    write_fleet_summary,
)
from repro.fleet import FleetSummary

SCALE = 0.008


@pytest.fixture(scope="module")
def tiny_grid(tmp_path_factory):
    cache = tmp_path_factory.mktemp("fleet-cache")
    grid = fleet_grid(
        scenario="rush",
        schedulers=("fifo",),
        policies=("sync-switch", "bsp"),
        seed=0,
        scale=SCALE,
        n_jobs=2,
        cache_dir=cache,
    )
    return grid, cache


class TestFleetRunRequest:
    def test_key_stable_and_distinct(self):
        base = FleetRunRequest("rush", "fifo", "sync-switch", seed=0)
        assert base.key(SCALE) == FleetRunRequest(
            "rush", "fifo", "sync-switch", seed=0
        ).key(SCALE)
        variants = {
            base.key(SCALE),
            FleetRunRequest("rush", "sjf", "sync-switch", 0).key(SCALE),
            FleetRunRequest("rush", "fifo", "bsp", 0).key(SCALE),
            FleetRunRequest("rush", "fifo", "sync-switch", 1).key(SCALE),
            base.key(0.01),
        }
        assert len(variants) == 5

    def test_key_differs_from_training_cells(self):
        # Fleet cells share the cache directory with training cells;
        # the "fleet" kind marker keeps the namespaces apart.
        from repro.experiments.executor import cache_key
        from repro.experiments.setups import SETUPS

        fleet_key = FleetRunRequest("rush", "fifo", "bsp", 0).key(SCALE)
        training = cache_key(
            SETUPS[1], {"kind": "switch", "percent": 100.0}, 0, SCALE
        )
        assert fleet_key != training


class TestFleetGrid:
    def test_grid_covers_all_cells(self, tiny_grid):
        grid, _ = tiny_grid
        assert set(grid) == {("fifo", "sync-switch"), ("fifo", "bsp")}
        for summary in grid.values():
            assert isinstance(summary, FleetSummary)
            assert summary.n_jobs == 2

    def test_cached_cells_never_resimulated(self, tiny_grid, monkeypatch):
        grid, cache = tiny_grid

        def explode(config):
            raise AssertionError("cache miss: fleet cell resimulated")

        monkeypatch.setattr(fleet_module, "simulate_fleet", explode)
        again = fleet_grid(
            scenario="rush",
            schedulers=("fifo",),
            policies=("sync-switch", "bsp"),
            seed=0,
            scale=SCALE,
            n_jobs=2,
            cache_dir=cache,
        )
        assert {
            key: summary.to_dict() for key, summary in again.items()
        } == {key: summary.to_dict() for key, summary in grid.items()}

    def test_cache_entries_are_valid_json(self, tiny_grid):
        _, cache = tiny_grid
        entries = sorted(cache.glob("*.json"))
        assert len(entries) == 2
        for path in entries:
            data = json.loads(path.read_text(encoding="utf-8"))
            assert FleetSummary.from_dict(data).scenario == "rush"
        assert not list(cache.glob("*.tmp"))


class TestFleetReportAndArtifact:
    def test_report_rows(self, tiny_grid):
        grid, _ = tiny_grid
        report = fleet_report(grid, "rush")
        assert len(report.rows) == 2
        assert "mean_jct_s" in report.columns
        schedulers = {row["scheduler"] for row in report.rows}
        assert schedulers == {"fifo"}

    def test_write_summary_artifact(self, tiny_grid, tmp_path):
        grid, _ = tiny_grid
        target = write_fleet_summary(
            grid, "rush", SCALE, 0, path=tmp_path / "fleet_summary.json"
        )
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["scenario"] == "rush"
        assert len(payload["cells"]) == 2
        assert {cell["sync_policy"] for cell in payload["cells"]} == {
            "bsp",
            "sync-switch",
        }

    def test_artifact_registered(self):
        assert "fleet" in ARTIFACTS

    def test_artifact_skipped_by_union_prefetch(self, tmp_path):
        # The fleet artifact is not expressible as training cells, so a
        # cross-artifact union prefetch must not simulate anything.
        runner = ExperimentRunner(
            scale=SCALE, seeds=1, cache_dir=tmp_path, jobs=1
        )
        assert prefetch_union(runner, [ARTIFACTS["fleet"]]) == 0
        assert list(tmp_path.glob("*.json")) == []
