"""Classification losses.

The paper trains image classifiers with softmax cross-entropy
(Section VI-A: "Training loss is calculated based on the cross-entropy
loss function per mini-batch").  Implemented with the log-sum-exp trick
so large logits (common right before ASP divergence) do not overflow.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "log_softmax",
    "softmax_probabilities",
    "softmax_cross_entropy",
    "accuracy_from_logits",
]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, numerically stable."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax probabilities."""
    return np.exp(log_softmax(logits))


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(batch, n_classes)`` scores.
    labels:
        ``(batch,)`` integer class labels.

    Returns
    -------
    ``(loss, grad)`` where ``grad`` has the same shape as ``logits`` and
    already includes the ``1/batch`` factor, so downstream backprop can
    sum over the batch dimension.
    """
    batch = logits.shape[0]
    log_probs = log_softmax(logits)
    loss = float(-log_probs[np.arange(batch), labels].mean())
    grad = np.exp(log_probs)
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad


def accuracy_from_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` against integer ``labels``."""
    predictions = logits.argmax(axis=1)
    return float((predictions == labels).mean())
