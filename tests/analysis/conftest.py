"""Shared fixtures for the ``repro lint`` analyzer tests."""

import importlib.util
import sys
from pathlib import Path

import pytest

from helpers_lint import FIXTURES


@pytest.fixture(scope="session")
def fixtures_root() -> Path:
    """The committed fixture mini-tree (mirrors the package layout)."""
    return FIXTURES


@pytest.fixture(scope="session")
def d004_module():
    """The D004 fixture module, imported the way the rule imports.

    Registered in ``sys.modules`` so :func:`inspect.getsource` can
    find class sources through ``cls.__module__``.
    """
    name = "lint_fixture_d004"
    if name in sys.modules:
        return sys.modules[name]
    path = FIXTURES / "d004_requests.py"
    spec = importlib.util.spec_from_file_location(name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module
