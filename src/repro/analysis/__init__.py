"""``repro.analysis`` — the determinism & invariant static analyzer.

An AST rule engine behind ``python -m repro lint``: machine-checks the
conventions the reproduction's bit-identity guarantees rest on.

* **D001** — randomness only through :mod:`repro.rng` child streams.
* **D002** — no wall-clock reads in simulated code.
* **D003** — no unordered-set iteration in simulation modules.
* **D004** — request-dataclass cache keys consume every field
  (semantic: fields via :mod:`dataclasses`, key reads via AST).
* **D005** — engines draw RNG only via the per-worker session
  accessors.

See ``docs/static_analysis.md`` for the rule catalog (with the past
incident each rule prevents), the suppression-comment syntax and the
ratchet-baseline workflow.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    RatchetResult,
    ratchet,
)
from repro.analysis.dataclass_keys import (
    DEFAULT_TARGETS,
    CacheKeyCompletenessRule,
    CacheKeyTarget,
    check_class,
)
from repro.analysis.framework import (
    RULE_REGISTRY,
    FileContext,
    Finding,
    LintReport,
    ProjectRule,
    Rule,
    analyze_paths,
    default_rules,
    register,
    repo_root,
    suppressed_lines,
)
from repro.analysis.report import json_payload, render_text, write_json_report
from repro.analysis.rules import (
    DirectRngRule,
    EngineSharedRngRule,
    SetIterationRule,
    WallClockRule,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CacheKeyCompletenessRule",
    "CacheKeyTarget",
    "DEFAULT_TARGETS",
    "DirectRngRule",
    "EngineSharedRngRule",
    "FileContext",
    "Finding",
    "LintReport",
    "ProjectRule",
    "RULE_REGISTRY",
    "RatchetResult",
    "Rule",
    "SetIterationRule",
    "WallClockRule",
    "analyze_paths",
    "check_class",
    "default_rules",
    "json_payload",
    "ratchet",
    "register",
    "render_text",
    "repo_root",
    "suppressed_lines",
    "write_json_report",
]
