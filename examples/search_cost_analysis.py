"""Search-cost analysis: when does the offline search pay for itself?

Reproduces the reasoning behind the paper's Tables II/IV-VI and Fig. 16
on live simulator logs: profile a workload's switch-timing sweep, then
Monte-Carlo-replay Algorithm 1 under different search settings and
report cost, amortization, effective training and success probability.

Usage::

    python examples/search_cost_analysis.py [scale] [n_simulations]
"""

import sys

from repro.core.search import SearchSetting
from repro.experiments import ExperimentRunner
from repro.experiments.search_analysis import cost_simulator
from repro.experiments.setups import SETUPS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    n_simulations = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    setup = SETUPS[1]
    runner = ExperimentRunner(scale=scale, seeds=3)

    print(f"profiling {setup.describe()} at scale {scale} "
          f"(sweep: {setup.sweep_percents})...")
    simulator = cost_simulator(runner, setup)
    print(
        f"ground-truth switch timing: "
        f"{simulator.ground_truth_fraction * 100:g}%\n"
    )

    settings = [
        SearchSetting(False, 5, 5),
        SearchSetting(False, 3, 3),
        SearchSetting(False, 1, 1),
        SearchSetting(True, 0, 3),
        SearchSetting(True, 0, 1),
    ]
    header = (
        f"{'setting':>14s} {'cost':>8s} {'amortized':>10s} "
        f"{'effective':>10s} {'success':>8s}"
    )
    print(header)
    for setting in settings:
        report = simulator.simulate(setting, n_simulations=n_simulations)
        print(
            f"{setting.label():>14s} {report.search_cost_x:>7.2f}X "
            f"{report.amortization_recurrences:>10.1f} "
            f"{report.effective_training_x:>9.2f}X "
            f"{report.success_probability * 100:>7.1f}%"
        )
    print(
        "\nreading: recurring jobs (Yes, 0, r) skip the BSP target runs "
        "and amortize fastest; single-run settings are cheap but risk "
        "missing the ground-truth timing."
    )


if __name__ == "__main__":
    main()
