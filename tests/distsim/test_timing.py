"""Tests for the timing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distsim.timing import TIMING_REGISTRY, TimingModel, timing_for
from repro.errors import ConfigurationError


def model() -> TimingModel:
    return TimingModel(
        batch_overhead=0.1,
        per_sample=0.001,
        sync_base=0.3,
        sync_per_worker=0.1,
        ps_apply=0.005,
        jitter_sigma=0.0,  # deterministic for exact assertions
    )


def test_compute_time_linear_in_batch():
    rng = np.random.default_rng(0)
    t128 = model().compute_time(128, rng)
    t256 = model().compute_time(256, rng)
    assert t128 == pytest.approx(0.1 + 0.128)
    assert t256 == pytest.approx(0.1 + 0.256)


def test_small_batches_are_inefficient_per_image():
    """Fig 8a mechanism: fixed overhead dominates small batches."""
    rng = np.random.default_rng(0)
    per_image_small = model().compute_time(16, rng) / 16
    per_image_large = model().compute_time(1024, rng) / 1024
    assert per_image_small > per_image_large


def test_slow_factor_scales_compute():
    rng = np.random.default_rng(0)
    base = model().compute_time(128, rng)
    slowed = model().compute_time(128, rng, slow_factor=4.0)
    assert slowed == pytest.approx(4.0 * base)


def test_extra_latency_adds_rtt_multiple():
    rng = np.random.default_rng(0)
    base = model().compute_time(128, rng)
    latency = model().compute_time(128, rng, extra_latency=0.010)
    assert latency == pytest.approx(base + 0.010 * 20.0)


def test_jitter_randomises_compute_time():
    noisy = TimingModel(
        batch_overhead=0.1,
        per_sample=0.001,
        sync_base=0.3,
        sync_per_worker=0.1,
        ps_apply=0.005,
        jitter_sigma=0.2,
    )
    rng = np.random.default_rng(0)
    draws = {noisy.compute_time(128, rng) for _ in range(8)}
    assert len(draws) == 8


def test_mean_compute_time_matches_lognormal_mean():
    noisy = TimingModel(
        batch_overhead=0.1,
        per_sample=0.001,
        sync_base=0.3,
        sync_per_worker=0.1,
        ps_apply=0.005,
        jitter_sigma=0.1,
    )
    rng = np.random.default_rng(0)
    draws = [noisy.compute_time(128, rng) for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(
        noisy.mean_compute_time(128), rel=0.02
    )


def test_sync_overhead_grows_with_cluster():
    assert model().sync_overhead(16) > model().sync_overhead(8)
    assert model().sync_overhead(8) == pytest.approx(0.3 + 0.8)


def test_bsp_round_time_is_max_plus_sync():
    durations = [0.2, 0.5, 0.3]
    assert model().bsp_round_time(durations, 3) == pytest.approx(
        0.5 + model().sync_overhead(3)
    )


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=30)
def test_sync_overhead_monotone(n):
    assert model().sync_overhead(n + 1) >= model().sync_overhead(n)


def test_registry_covers_both_workloads():
    assert ("resnet32-sim", "k80") in TIMING_REGISTRY
    assert ("resnet50-sim", "k80") in TIMING_REGISTRY


def test_resnet50_slower_per_batch_than_resnet32():
    small = timing_for("resnet32-sim")
    large = timing_for("resnet50-sim")
    assert large.mean_compute_time(128) > small.mean_compute_time(128)


def test_timing_for_unknown_raises():
    with pytest.raises(ConfigurationError):
        timing_for("resnet32-sim", "tpu")


def test_validation():
    with pytest.raises(ConfigurationError):
        TimingModel(
            batch_overhead=0.0,
            per_sample=0.001,
            sync_base=0.1,
            sync_per_worker=0.1,
            ps_apply=0.001,
        )
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        model().compute_time(0, rng)
    with pytest.raises(ConfigurationError):
        model().compute_time(128, rng, slow_factor=0.5)
    with pytest.raises(ConfigurationError):
        model().sync_overhead(0)
    with pytest.raises(ConfigurationError):
        model().bsp_round_time([], 3)
