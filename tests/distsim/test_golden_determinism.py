"""Golden-determinism suite: the kernel rewrite must be bit-identical.

Each configuration runs one small-but-real training job through a
protocol engine and hashes the full ``TrainingResult.to_dict()``.  The
hashes committed in ``tests/data/golden_hashes.json`` were produced
*before* the zero-copy kernel rewrite (PR 4), so any change to the
numeric stream — parameter updates, RNG consumption order, telemetry
contents — fails this suite.

The committed hashes are exact float bit patterns and therefore depend
on the BLAS build: on a machine whose numpy produces different matmul
roundings, set ``REPRO_GOLDEN_SKIP=1`` to skip the cross-machine hash
comparison (the machine-independent determinism and jobs=1-vs-jobs=N
parity tests still run).

Regenerate after an *intentional* numeric change with::

    PYTHONPATH=src python tests/distsim/test_golden_determinism.py regen
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path

import pytest

from repro.distsim.cluster import ClusterSpec
from repro.distsim.job import JobConfig, TrainingPlan
from repro.distsim.telemetry import TrainingResult
from repro.distsim.trainer import DistributedTrainer

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_hashes.json"

#: Small but real: 4 workers, 240 steps, ambient noise on, eval + loss
#: logging exercised, every engine's default options.
_GOLDEN_JOB = dict(
    model="resnet32-sim",
    dataset="cifar10-sim",
    total_steps=240,
    batch_size=32,
    base_lr=0.004,
    eval_every=80,
    loss_log_every=40,
    seed=1,
)

PLANS: dict[str, TrainingPlan] = {
    "bsp": TrainingPlan.static("bsp"),
    "asp": TrainingPlan.static("asp"),
    "ssp": TrainingPlan.static("ssp"),
    "dssp": TrainingPlan.static("dssp"),
    "switch-bsp-asp": TrainingPlan.switch_at(0.25),
}


def build_result(name: str) -> TrainingResult:
    """Run the golden configuration ``name`` from scratch."""
    job = JobConfig(**_GOLDEN_JOB)
    trainer = DistributedTrainer(job, ClusterSpec(n_workers=4))
    return trainer.run(PLANS[name])


def result_hash(result: TrainingResult) -> str:
    """Canonical sha256 of the full result payload."""
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _skip_unless_golden_machine():
    if os.environ.get("REPRO_GOLDEN_SKIP", "") not in ("", "0"):
        pytest.skip("REPRO_GOLDEN_SKIP set (BLAS float bits differ here)")


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/distsim/test_golden_determinism.py regen`"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", sorted(PLANS))
def test_golden_hash_unchanged(name, golden):
    """Engine output matches the committed pre-rewrite hash exactly."""
    _skip_unless_golden_machine()
    assert name in golden["hashes"], f"no committed hash for {name!r}"
    assert result_hash(build_result(name)) == golden["hashes"][name], (
        f"{name}: TrainingResult changed vs the committed golden hash — "
        "the hot-path kernel is no longer bit-identical"
    )


def test_repeated_runs_are_identical():
    """Machine-independent: two fresh runs produce identical payloads."""
    first = build_result("asp")
    second = build_result("asp")
    assert first.to_dict() == second.to_dict()


def test_jobs_parallelism_is_bit_identical(tmp_path):
    """jobs=1 and jobs=2 executor paths yield byte-identical results."""
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.setups import SETUPS

    specs = [
        {"kind": "switch", "percent": 6.25},
        {"kind": "static", "protocol": "asp"},
    ]
    results = {}
    for jobs in (1, 2):
        runner = ExperimentRunner(
            scale=0.005, seeds=2, cache_dir=tmp_path / f"jobs{jobs}", jobs=jobs
        )
        runner.prefetch([(SETUPS[1], spec) for spec in specs], seeds=2)
        results[jobs] = [
            runner.run(SETUPS[1], spec, seed).to_dict()
            for spec in specs
            for seed in range(2)
        ]
    assert results[1] == results[2]


def _regenerate() -> None:
    hashes = {name: result_hash(build_result(name)) for name in sorted(PLANS)}
    import numpy as np

    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(
            {
                "job": _GOLDEN_JOB,
                "n_workers": 4,
                "numpy": np.__version__,
                "hashes": hashes,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
    for name, value in hashes.items():
        print(f"  {name}: {value}")


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "regen":
        _regenerate()
    else:
        print(__doc__)
        sys.exit(2)
