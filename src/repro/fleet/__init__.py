"""Multi-tenant fleet layer: streams of Sync-Switch jobs on one pool.

The fleet subsystem turns the single-job reproduction into a
serving-scale simulator of the paper's intended setting — recurring
training jobs on a shared cluster (Section VI-C): job arrival streams
(:mod:`repro.fleet.workload`), pluggable schedulers including
deadline/SLO-aware admission (:mod:`repro.fleet.scheduler`), the
discrete-event loop (:mod:`repro.fleet.fleet_sim`), the amortized
Algorithm 1 timing search run as fleet jobs
(:mod:`repro.fleet.tuning`) with its per-class policy cache and
break-even ledger (:mod:`repro.fleet.policy_store`), and fleet
telemetry (:mod:`repro.fleet.metrics`).
"""

from repro.fleet.fleet_sim import (
    RESIM_MODES,
    FleetConfig,
    FleetSimulator,
    WorkerPool,
    simulate_fleet,
)
from repro.fleet.metrics import (
    FleetSummary,
    JobRecord,
    merge_fleet_summaries,
    percentile,
    summarize_fleet,
)
from repro.fleet.policy_store import (
    STORE_FORMAT_VERSION,
    ClassPolicy,
    JobClass,
    PolicyStore,
    policy_from_schedule_search,
    policy_from_search,
)
from repro.fleet.scheduler import (
    SCHEDULERS,
    BestFitScheduler,
    FifoScheduler,
    SchedulerContext,
    SchedulerPolicy,
    SloAwareScheduler,
    SmallestJobFirstScheduler,
    make_scheduler,
)
from repro.fleet.tuning import ScheduleSearchSession, TimingSearchSession
from repro.fleet.workload import (
    DEFAULT_TENANT_TIERS,
    FLEET_SCENARIOS,
    JOB_KINDS,
    SYNC_POLICIES,
    TRACE_SCENARIOS,
    FleetScenario,
    JobRequest,
    TenantTier,
    TraceScenario,
    assign_shards,
    bounded_pareto,
    estimate_service_time,
    load_trace,
    poisson_stream,
    resolve_percent,
    save_trace,
    trace_stream,
)

__all__ = [
    "DEFAULT_TENANT_TIERS",
    "FLEET_SCENARIOS",
    "JOB_KINDS",
    "RESIM_MODES",
    "SCHEDULERS",
    "STORE_FORMAT_VERSION",
    "SYNC_POLICIES",
    "TRACE_SCENARIOS",
    "BestFitScheduler",
    "ClassPolicy",
    "FifoScheduler",
    "FleetConfig",
    "FleetScenario",
    "FleetSimulator",
    "FleetSummary",
    "JobClass",
    "JobRecord",
    "JobRequest",
    "PolicyStore",
    "ScheduleSearchSession",
    "SchedulerContext",
    "SchedulerPolicy",
    "SloAwareScheduler",
    "SmallestJobFirstScheduler",
    "TenantTier",
    "TimingSearchSession",
    "TraceScenario",
    "WorkerPool",
    "assign_shards",
    "bounded_pareto",
    "estimate_service_time",
    "load_trace",
    "make_scheduler",
    "merge_fleet_summaries",
    "percentile",
    "poisson_stream",
    "policy_from_schedule_search",
    "policy_from_search",
    "resolve_percent",
    "save_trace",
    "simulate_fleet",
    "summarize_fleet",
    "trace_stream",
]
