"""Regenerates the paper's Figure 4(a).

BSP vs ASP steady-state throughput across all three setups, no injected
stragglers.

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import figure_4a


def bench_fig04a_throughput(benchmark, runner, emit):
    report = benchmark.pedantic(
        figure_4a, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "fig04a_throughput")
    assert report.rows, "artifact produced no measured rows"
