"""D005 exemption fixture: ``base.py`` owns the private stream stores."""


class Session:
    def __init__(self, seeds):
        self._time_rngs = dict(seeds)  # allowed: base.py is exempt

    def time_rng(self, worker: int):
        return self._time_rngs[worker]
