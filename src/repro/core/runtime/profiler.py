"""Job/task/worker profiler (paper Fig. 9).

Continuously collects per-worker step durations from the engines'
telemetry feed and maintains sliding-window throughput estimates, which
are the input to the straggler detector (Section IV-B2: "we leverage
the historical average training throughput to detect the stragglers").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ThroughputProfiler"]


@dataclass
class ThroughputProfiler:
    """Sliding-window per-worker throughput (images/second).

    ``window`` is the number of recent batches kept per worker;
    ``batch_size`` converts durations into images/second.
    """

    batch_size: int
    window: int = 5
    _durations: dict[int, deque] = field(default_factory=dict)
    _totals: dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.window < 1:
            raise ConfigurationError("window must be at least 1")

    def observe(self, worker: int, duration: float) -> None:
        """Record one batch duration for ``worker``."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        bucket = self._durations.setdefault(worker, deque(maxlen=self.window))
        bucket.append(duration)
        self._totals[worker] = self._totals.get(worker, 0) + 1

    def throughput(self, worker: int) -> float | None:
        """Sliding-window images/second for ``worker`` (None if unseen)."""
        bucket = self._durations.get(worker)
        if not bucket:
            return None
        return self.batch_size * len(bucket) / sum(bucket)

    def throughputs(self) -> dict[int, float]:
        """Current sliding-window throughput of every observed worker."""
        return {
            worker: throughput
            for worker in self._durations
            if (throughput := self.throughput(worker)) is not None
        }

    def observations(self, worker: int) -> int:
        """Total batches observed for ``worker``."""
        return self._totals.get(worker, 0)

    def forget(self, worker: int) -> None:
        """Drop a worker's history (after eviction)."""
        self._durations.pop(worker, None)
        self._totals.pop(worker, None)

    def reset(self) -> None:
        """Clear all history (after a protocol switch)."""
        self._durations.clear()
        self._totals.clear()
