"""Asynchronous Parallel engine.

Semantics (paper Fig. 3b): each worker independently pulls parameters,
computes a gradient on its own mini-batch, and pushes it; the PS
applies every push immediately.  The gradient a worker pushes was
computed at the parameter version it *pulled*, which by push time is
``tau`` updates old — that realized staleness is what degrades (and at
scale, diverges) ASP training.

The engine is event-driven: worker push completions are events on a
min-heap.  PS update application is serialized (``ps_apply`` spacing),
modelling the lock the real parameter server takes per apply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distsim.engines.base import (
    GradientBatcher,
    StopCondition,
    TrainingSession,
)
from repro.distsim.events import EventQueue
from repro.mlcore.compression import GradientCompressor, make_compressor

__all__ = ["ASPEngine"]

#: Share of the per-batch fixed overhead that is gradient/parameter
#: communication (the part gradient compression can shrink).
COMM_FRACTION = 0.5


@dataclass(slots=True)
class _WorkerState:
    """In-flight computation of one asynchronous worker."""

    params: np.ndarray
    pulled_version: int
    start_time: float


class ASPEngine:
    """Fully asynchronous event loop with real stale gradients."""

    name = "asp"
    precision = 40
    synchronous = False
    config_schema = {
        "batch_size": "per-worker mini-batch size (default: job batch size)",
        "lr_multiplier": "learning-rate scale (default: 1.0)",
        "momentum_schedule": "post-switch momentum ramp (MomentumSchedule)",
        "compression": "gradient compressor name or instance (default: none)",
    }
    _compressor: GradientCompressor | None = None

    def run(
        self,
        session: TrainingSession,
        steps: int,
        options: dict | None = None,
        stop: StopCondition | None = None,
    ) -> str:
        options = options or {}
        batch_size = int(options.get("batch_size", session.job.batch_size))
        lr_multiplier = float(options.get("lr_multiplier", 1.0))
        self._compressor = self._resolve_compressor(options.get("compression"))
        session.note_async_phase(options.get("momentum_schedule"))

        target = session.step + steps
        queue = EventQueue()
        states: dict[int, _WorkerState] = {}
        batcher = GradientBatcher(session, batch_size)
        ps_free_at = session.clock.now

        for worker in session.cluster.active_workers:
            self._pull_and_schedule(session, queue, states, worker, batch_size)

        try:
            while session.step < target and queue:
                event_time, worker = queue.pop()
                if not session.cluster.is_active(worker):
                    stale = states.pop(worker, None)
                    if stale is not None:
                        batcher.invalidate(worker)
                        session.ps.release(stale.params)
                    continue
                # PS applies pushes one at a time.
                apply_time = max(event_time, ps_free_at)
                ps_free_at = apply_time + session.timing.ps_apply
                session.clock.advance_to(apply_time)

                state = states[worker]
                staleness = session.ps.staleness(state.pulled_version)
                session.telemetry.record_staleness(staleness)
                loss, grad = batcher.gradient_for(worker, states)
                del states[worker]
                session.ps.release(state.params)
                if self._compressor is not None:
                    grad = self._compressor.compress(
                        grad, self._compression_rng(session, worker)
                    )
                lr = session.base_lr_now() * lr_multiplier
                session.ps.push(grad, lr, momentum=session.momentum_now())
                session.telemetry.record_worker_duration(
                    apply_time, worker, apply_time - state.start_time
                )

                session.step += 1
                session.telemetry.images_processed += batch_size
                session.after_update(loss)

                if stop is not None:
                    reason = stop(session)
                    if reason:
                        return reason
                # Reschedule only after the stop hook ran: it may have
                # resized the cluster (elastic shrink during an ASP
                # tail), and an evicted worker must not get new work.
                self._pull_and_schedule(
                    session, queue, states, worker, batch_size
                )
        finally:
            # Rewind the data streams of eagerly evaluated updates that
            # never got applied, so follow-up segments see exactly the
            # draws a per-update evaluation would have made — and hand
            # the in-flight snapshots back so their buffers recycle.
            batcher.rollback_unconsumed()
            for state in states.values():
                session.ps.release(state.params)
        return "completed"

    def _pull_and_schedule(
        self,
        session: TrainingSession,
        queue: EventQueue,
        states: dict[int, _WorkerState],
        worker: int,
        batch_size: int,
    ) -> None:
        """Worker pulls fresh parameters and schedules its next push.

        No-op for workers that are not active: scheduling an evicted
        worker would enqueue a push that the event loop silently drops,
        pinning its parameter snapshot until then.
        """
        if not session.cluster.is_active(worker):
            return
        params, version = session.ps.pull()
        now = session.clock.now
        states[worker] = _WorkerState(
            params=params, pulled_version=version, start_time=now
        )
        slow, latency = session.stragglers.state_at(worker, now)
        duration = session.timing.compute_time(
            batch_size, session.time_noise(worker), slow, latency
        )
        duration = max(duration - self._comm_saving(session), 1e-4)
        queue.push(now + duration, worker)

    def _compression_rng(
        self, session: TrainingSession, worker: int
    ) -> np.random.Generator:
        """Stream compression randomness draws from.

        The legacy ASP ``compression`` option interleaves with the
        timing-jitter stream (pre-registry behaviour, kept bit-exact);
        :class:`~repro.distsim.engines.casp.CASPEngine` overrides this
        with the session's dedicated compression stream.
        """
        return session.time_rng(worker)

    def _resolve_compressor(self, spec) -> GradientCompressor | None:
        """Accept a compressor instance, a name, or None."""
        if spec is None:
            return None
        if isinstance(spec, str):
            return make_compressor(spec)
        return spec

    def _comm_saving(self, session: TrainingSession) -> float:
        """Per-batch seconds saved by compressing gradient traffic."""
        if self._compressor is None:
            return 0.0
        ratio = self._compressor.compression_ratio()
        if ratio <= 1.0:
            return 0.0
        return (
            session.timing.batch_overhead * COMM_FRACTION * (1.0 - 1.0 / ratio)
        )
