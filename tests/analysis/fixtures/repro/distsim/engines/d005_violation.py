"""D005 positive fixture: engine draws bypassing session accessors."""


class LeakyEngine:
    def __init__(self, rng):
        self.rng = rng  # a shared generator stored on the engine

    def step(self, session, worker: int) -> float:
        raw = session._time_rngs[worker]  # finding: private store access
        jitter = self.rng.normal()  # finding: draw on shared attribute
        noise = raw.lognormal(0.0, 0.1)  # finding: draw on unblessed local
        return jitter + noise
