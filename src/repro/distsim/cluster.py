"""Cluster specification and membership (with elastic resizing).

The paper collocates one parameter server and one worker per VM
(Section II-A), so a "cluster of n" means n PS shards and n workers.
The elastic straggler policy (Section IV-B2) temporarily evicts
workers and later restores them; this module tracks that membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClusterError, ConfigurationError

__all__ = ["ClusterSpec", "Cluster", "WorkerTier", "default_worker_tiers"]


@dataclass(frozen=True)
class WorkerTier:
    """One homogeneous slice of a heterogeneous worker pool.

    Datacenter pools mix hardware generations and placement domains
    (the fast/slow, cloud-vs-edge mixes of QSync and ACE-Sync):

    * ``speed_factor`` multiplies per-step compute time — realized as a
      permanent straggler slowdown on the tier's workers, so the
      engine's existing straggler handling (BSP barriers bound by the
      slowest worker, ASP progress per worker) prices it correctly;
    * ``bandwidth_factor`` multiplies provisioning costs (init, switch,
      elastic resize push configs and checkpoints over the tier's
      links) via :class:`~repro.distsim.overheads.ProvisioningModel`;
    * ``extra_latency`` adds a per-step communication delay (edge
      links), also carried by the straggler event.

    ``speed_factor`` 1.0 / ``bandwidth_factor`` 1.0 is the calibrated
    cloud baseline; factors are slowdowns, never speedups, so the
    calibration stays an upper bound on per-worker performance.
    """

    name: str
    count: int
    speed_factor: float = 1.0
    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("tier name must be non-empty")
        if self.count <= 0:
            raise ConfigurationError("tier count must be positive")
        if self.speed_factor < 1.0:
            raise ConfigurationError("speed_factor must be >= 1")
        if self.bandwidth_factor < 1.0:
            raise ConfigurationError("bandwidth_factor must be >= 1")
        if self.extra_latency < 0.0:
            raise ConfigurationError("extra_latency must be non-negative")

    def to_dict(self) -> dict:
        """Plain-python dict for cache keys and artifacts."""
        return {
            "name": self.name,
            "count": self.count,
            "speed_factor": self.speed_factor,
            "bandwidth_factor": self.bandwidth_factor,
            "extra_latency": self.extra_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerTier":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def default_worker_tiers(pool_size: int) -> tuple[WorkerTier, ...]:
    """Canonical heterogeneous split for trace-scale pools.

    Half the pool is the calibrated cloud baseline, half an edge-class
    tier that steps ~1.35x slower and pays ~1.6x for provisioning
    pushes — in the regime where protocol choice matters per tier
    without drowning the pool in stragglers.
    """
    if pool_size <= 0:
        raise ConfigurationError("pool size must be positive")
    fast = pool_size - pool_size // 2
    slow = pool_size // 2
    tiers = [WorkerTier("fast", fast)]
    if slow > 0:
        tiers.append(
            WorkerTier("slow", slow, speed_factor=1.35, bandwidth_factor=1.6)
        )
    return tuple(tiers)


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the training cluster."""

    n_workers: int
    gpu: str = "k80"
    region: str = "us-west1"

    def __post_init__(self):
        if self.n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        if not self.gpu:
            raise ConfigurationError("gpu type must be non-empty")

    @property
    def n_parameter_servers(self) -> int:
        """PSs are collocated with workers, one per node."""
        return self.n_workers


@dataclass
class Cluster:
    """Mutable cluster membership on top of a :class:`ClusterSpec`."""

    spec: ClusterSpec
    _evicted: set[int] = field(default_factory=set)

    @property
    def all_workers(self) -> tuple[int, ...]:
        """Every provisioned worker id, evicted or not."""
        return tuple(range(self.spec.n_workers))

    @property
    def active_workers(self) -> tuple[int, ...]:
        """Workers currently participating in training."""
        return tuple(
            worker
            for worker in range(self.spec.n_workers)
            if worker not in self._evicted
        )

    @property
    def n_active(self) -> int:
        """Number of participating workers."""
        return self.spec.n_workers - len(self._evicted)

    def evict(self, worker: int) -> None:
        """Remove a worker from training (elastic straggler policy)."""
        if worker not in self.all_workers:
            raise ClusterError(f"worker {worker} does not exist")
        if worker in self._evicted:
            raise ClusterError(f"worker {worker} is already evicted")
        if self.n_active <= 1:
            raise ClusterError("cannot evict the last active worker")
        self._evicted.add(worker)

    def restore(self, worker: int) -> None:
        """Return an evicted worker to the active set."""
        if worker not in self._evicted:
            raise ClusterError(f"worker {worker} is not evicted")
        self._evicted.discard(worker)

    def restore_all(self) -> None:
        """Return every evicted worker (end of the elastic BSP phase)."""
        self._evicted.clear()

    def is_active(self, worker: int) -> bool:
        """Whether ``worker`` currently participates."""
        return (
            0 <= worker < self.spec.n_workers
            and worker not in self._evicted
        )
