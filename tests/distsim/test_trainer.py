"""Tests for the distributed trainer."""

import pytest

from repro.distsim import (
    ClusterSpec,
    DistributedTrainer,
    JobConfig,
    TrainingPlan,
)
from repro.distsim.overheads import ProvisioningModel


def job(total_steps=480, seed=0, **overrides) -> JobConfig:
    base = dict(
        model="resnet32-sim",
        dataset="cifar10-sim",
        total_steps=total_steps,
        base_lr=0.004,
        eval_every=120,
        loss_log_every=60,
        seed=seed,
    )
    base.update(overrides)
    return JobConfig(**base)


def trainer(job_config=None, n_workers=4, **kwargs) -> DistributedTrainer:
    return DistributedTrainer(
        job_config or job(), ClusterSpec(n_workers=n_workers), **kwargs
    )


class TestPlanExecution:
    def test_static_plan_completes_budget(self):
        result = trainer().run(TrainingPlan.static("asp"))
        assert result.completed_steps == 480
        assert not result.diverged
        assert result.switch_count == 0

    def test_bsp_rounds_may_overshoot_by_less_than_n(self):
        result = trainer(job(total_steps=481), n_workers=4).run(
            TrainingPlan.static("bsp")
        )
        assert 481 <= result.completed_steps < 481 + 4

    def test_switching_plan_runs_both_segments(self):
        result = trainer().run(TrainingPlan.switch_at(0.25))
        protocols = [record["protocol"] for record in result.segment_summary]
        assert protocols == ["bsp", "asp"]
        bsp_segment = result.segment_summary[0]
        assert bsp_segment["end_step"] == pytest.approx(120, abs=4)

    def test_switch_charges_exactly_one_overhead(self):
        result = trainer().run(TrainingPlan.switch_at(0.25))
        assert result.switch_count == 1
        expected = ProvisioningModel(parallel=True).switch_time(4)
        assert result.total_overhead == pytest.approx(expected)

    def test_static_plan_charges_no_overhead(self):
        result = trainer().run(TrainingPlan.static("bsp"))
        assert result.total_overhead == 0.0

    def test_overhead_included_in_total_time(self):
        result = trainer().run(TrainingPlan.switch_at(0.25))
        segments_time = sum(r["duration"] for r in result.segment_summary)
        assert result.total_time == pytest.approx(
            segments_time + result.total_overhead, rel=0.01
        )

    def test_images_accounting(self):
        result = trainer().run(TrainingPlan.static("asp"))
        assert result.images_processed == 480 * 128

    def test_eval_curve_populated(self):
        result = trainer().run(TrainingPlan.static("asp"))
        assert len(result.eval_accuracies) >= 3
        assert all(0.0 <= acc <= 1.0 for acc in result.eval_accuracies)
        assert list(result.eval_steps) == sorted(result.eval_steps)

    def test_loss_curve_populated(self):
        result = trainer().run(TrainingPlan.static("bsp"))
        assert len(result.loss_values) >= 3
        # training should reduce the loss overall
        assert result.loss_values[-1] < result.loss_values[0]

    def test_plan_description_recorded(self):
        plan = TrainingPlan.switch_at(0.0625)
        result = trainer().run(plan)
        assert result.plan == plan.describe()

    def test_seed_changes_outcome(self):
        result_a = trainer(job(seed=0)).run(TrainingPlan.static("asp"))
        result_b = trainer(job(seed=1)).run(TrainingPlan.static("asp"))
        assert result_a.eval_accuracies != result_b.eval_accuracies

    def test_same_seed_is_deterministic(self):
        result_a = trainer(job(seed=0)).run(TrainingPlan.static("asp"))
        result_b = trainer(job(seed=0)).run(TrainingPlan.static("asp"))
        assert result_a.eval_accuracies == result_b.eval_accuracies
        assert result_a.total_time == result_b.total_time


class TestDivergenceHandling:
    def test_asp_on_16_workers_diverges(self):
        result = trainer(
            job(total_steps=1200), n_workers=16, ambient_noise=False
        ).run(TrainingPlan.static("asp"))
        assert result.diverged
        assert result.diverged_step is not None
        assert result.completed_steps < 1200
        assert result.reported_accuracy is None

    def test_bsp_on_16_workers_converges(self):
        result = trainer(job(total_steps=480), n_workers=16).run(
            TrainingPlan.static("bsp")
        )
        assert not result.diverged

    def test_divergence_time_is_partial(self):
        full = trainer(job(total_steps=1200), n_workers=16).run(
            TrainingPlan.static("bsp")
        )
        diverged = trainer(job(total_steps=1200), n_workers=16).run(
            TrainingPlan.static("asp")
        )
        assert diverged.total_time < full.total_time


class TestAmbientNoise:
    def test_ambient_noise_slows_training(self):
        noisy = trainer(job(seed=2), ambient_noise=True).run(
            TrainingPlan.static("bsp")
        )
        quiet = trainer(job(seed=2), ambient_noise=False).run(
            TrainingPlan.static("bsp")
        )
        assert noisy.total_time > quiet.total_time

    def test_ambient_noise_fattens_staleness_tail(self):
        noisy = trainer(job(seed=2, total_steps=960), ambient_noise=True).run(
            TrainingPlan.static("asp")
        )
        quiet = trainer(job(seed=2, total_steps=960), ambient_noise=False).run(
            TrainingPlan.static("asp")
        )
        assert noisy.staleness["max"] > quiet.staleness["max"]
