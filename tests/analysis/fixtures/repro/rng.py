"""D001 exemption fixture: ``repro/rng.py`` owns default_rng."""

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)  # allowed: this file is the sanctioned wrapper
