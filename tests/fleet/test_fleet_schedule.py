"""Fleet end-to-end coverage for N-segment protocol schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import FleetConfig, FleetSimulator, PolicyStore
from repro.fleet.workload import JobRequest


class TestConfigValidation:
    def test_fractions_without_protocols_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(fractions=(0.5, 0.5))

    def test_protocols_without_fractions_needs_tune(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(protocols=("bsp", "ssp", "asp"))
        FleetConfig(protocols=("bsp", "ssp", "asp"), tune=True)

    def test_reversed_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(protocols=("asp", "bsp"), tune=True)

    def test_fraction_vector_checked(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(
                protocols=("bsp", "ssp", "asp"), fractions=(0.5, 0.5)
            )
        with pytest.raises(ConfigurationError):
            FleetConfig(
                protocols=("bsp", "asp"), fractions=(0.7, 0.7)
            )


class TestFixedScheduleStream:
    def test_every_stream_job_trains_the_schedule(self):
        summary = FleetSimulator(
            FleetConfig(
                scenario="rush",
                scheduler="fifo",
                sync_policy="sync-switch",
                seed=0,
                scale=0.008,
                n_jobs=3,
                protocols=("bsp", "ssp", "asp"),
                fractions=(0.25, 0.25, 0.5),
            )
        ).run()
        assert len(summary.jobs) == 3
        for record in summary.jobs:
            assert record.outcome == "completed"
            assert record.percent == pytest.approx(25.0)


class TestTunedScheduleStream:
    def test_search_installs_full_schedule_policy(self):
        store = PolicyStore()
        summary = FleetSimulator(
            FleetConfig(
                scenario="rush",
                scheduler="fifo",
                sync_policy="sync-switch",
                seed=0,
                scale=0.008,
                n_jobs=3,
                tune=True,
                protocols=("bsp", "ssp", "asp"),
            ),
            store=store,
        ).run()
        assert summary.n_search_jobs > 0
        policies = store.report()
        assert policies, "the recurring class must end up tuned"
        for row in policies:
            assert row["schedule"] == "BSP -> SSP -> ASP"
            assert len(row["fractions"]) == 3
            assert sum(row["fractions"]) == pytest.approx(1.0)

    def test_two_phase_config_unchanged_by_default(self):
        """No protocols given -> the classic TimingSearchSession path."""
        store = PolicyStore()
        FleetSimulator(
            FleetConfig(
                scenario="rush", scheduler="fifo",
                sync_policy="sync-switch", seed=0, scale=0.008, n_jobs=3,
                tune=True,
            ),
            store=store,
        ).run()
        for row in store.report():
            assert row["schedule"] == "BSP -> ASP"
            assert row["fractions"] is None


class TestRequestLevelSchedules:
    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            JobRequest(
                job_id=0, arrival=0.0, protocols=("bsp", "asp"),
            )
        with pytest.raises(ConfigurationError):
            JobRequest(
                job_id=0, arrival=0.0, protocols=("bsp", "asp"),
                fractions=(0.5,),
            )
        with pytest.raises(ConfigurationError):
            JobRequest(
                job_id=0, arrival=0.0, protocols=("bsp", "nope"),
                fractions=(0.5, 0.5),
            )

    def test_trace_round_trip_keeps_schedule(self):
        request = JobRequest(
            job_id=7, arrival=3.0, sync_policy="sync-switch",
            protocols=("bsp", "dssp"), fractions=(0.375, 0.625),
        )
        again = JobRequest.from_dict(request.to_dict())
        assert again.protocols == ("bsp", "dssp")
        assert again.fractions == (0.375, 0.625)

    def test_old_trace_dicts_load_without_schedule_keys(self):
        payload = JobRequest(job_id=1, arrival=0.0).to_dict()
        del payload["protocols"]
        del payload["fractions"]
        request = JobRequest.from_dict(payload)
        assert request.protocols is None
        assert request.fractions is None
