"""Ratchet baseline for ``repro lint``.

The committed baseline (``tests/data/lint_baseline.json``) is the
ratchet: findings recorded there are tolerated, anything *new* fails
the gate, and an entry whose finding has been fixed is reported as
**stale** (and also fails) so the baseline can only shrink.  Entries
match findings on the line-free :meth:`Finding.identity` — rule, path
and message — as a multiset, so refactors that move a tolerated
finding to another line pass while a second occurrence of the same
message in the same file is still new.

Every entry carries a free-text ``note`` explaining *why* it is
tolerated; :meth:`Baseline.save` refuses noteless entries to keep the
committed file self-documenting.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.framework import Finding

__all__ = ["Baseline", "BaselineEntry", "RatchetResult", "ratchet"]

BASELINE_FORMAT_VERSION = 1


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One tolerated finding: its ratchet identity plus a why-note."""

    rule: str
    path: str
    message: str
    note: str = ""

    def identity(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, str]) -> "BaselineEntry":
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            message=payload["message"],
            note=payload.get("note", ""),
        )

    def render(self) -> str:
        return f"{self.path}: {self.rule}: {self.message}"


@dataclass
class Baseline:
    """The committed set of tolerated findings."""

    entries: tuple[BaselineEntry, ...] = ()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported lint baseline version {version!r} in {path}"
            )
        return cls(
            entries=tuple(
                BaselineEntry.from_dict(entry)
                for entry in payload.get("entries", [])
            )
        )

    def save(self, path: Path) -> Path:
        """Write the baseline JSON (entries sorted, notes required)."""
        noteless = [entry for entry in self.entries if not entry.note]
        if noteless:
            raise ValueError(
                "baseline entries need a note explaining why they are "
                "tolerated: "
                + "; ".join(entry.render() for entry in sorted(noteless))
            )
        payload = {
            "version": BASELINE_FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in sorted(self.entries)],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def from_findings(
        cls, findings: list[Finding], note: str
    ) -> "Baseline":
        """A baseline tolerating exactly ``findings`` (one shared note)."""
        return cls(
            entries=tuple(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    note=note,
                )
                for finding in sorted(findings)
            )
        )


@dataclass
class RatchetResult:
    """Findings split against the baseline: new fail, stale also fail."""

    new: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    matched: int = 0

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def ratchet(findings: list[Finding], baseline: Baseline) -> RatchetResult:
    """Split ``findings`` against ``baseline`` as identity multisets."""
    allowance = Counter(entry.identity() for entry in baseline.entries)
    result = RatchetResult()
    for finding in sorted(findings):
        identity = finding.identity()
        if allowance.get(identity, 0) > 0:
            allowance[identity] -= 1
            result.matched += 1
        else:
            result.new.append(finding)
    if result.matched < len(baseline.entries):
        for entry in sorted(baseline.entries):
            identity = entry.identity()
            if allowance.get(identity, 0) > 0:
                allowance[identity] -= 1
                result.stale.append(entry)
    return result
