"""Tests for the residual MLP classifier."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mlcore.datasets import make_dataset
from repro.mlcore.models import (
    MODEL_REGISTRY,
    ModelConfig,
    ResidualMLPClassifier,
    make_model,
)


def small_model(weight_decay=0.0) -> ResidualMLPClassifier:
    return ResidualMLPClassifier(
        ModelConfig(
            name="tiny",
            input_dim=6,
            hidden_dim=8,
            n_blocks=2,
            n_classes=4,
            weight_decay=weight_decay,
        )
    )


def test_registry_contains_paper_workloads():
    assert set(MODEL_REGISTRY) == {"resnet32-sim", "resnet50-sim"}


def test_make_model_rejects_unknown():
    with pytest.raises(ConfigurationError, match="unknown model"):
        make_model("resnet18-sim")


def test_resnet50_is_bigger_than_resnet32():
    small = make_model("resnet32-sim")
    large = make_model("resnet50-sim")
    assert large.n_parameters > small.n_parameters
    assert large.flops_per_sample > small.flops_per_sample


def test_init_params_deterministic_per_seed():
    model = small_model()
    assert np.array_equal(model.init_params(3), model.init_params(3))
    assert not np.array_equal(model.init_params(3), model.init_params(4))


def test_init_params_dtype():
    model = small_model()
    assert model.init_params(0).dtype == np.float32
    assert model.init_params(0, dtype=np.float64).dtype == np.float64


def test_biases_initialised_to_zero():
    model = small_model()
    params = model.init_params(0, dtype=np.float64)
    assert np.all(model.layout.view(params, "b_in") == 0.0)
    assert np.all(model.layout.view(params, "b_out") == 0.0)


def test_gradient_matches_finite_difference():
    model = small_model(weight_decay=1e-3)
    rng = np.random.default_rng(0)
    params = model.init_params(0, dtype=np.float64)
    inputs = rng.normal(size=(9, 6))
    labels = rng.integers(0, 4, size=9)
    loss, grad = model.loss_and_grad(params, inputs, labels)
    assert np.isfinite(loss)
    eps = 1e-6
    for index in rng.integers(0, params.size, size=25):
        plus = params.copy()
        plus[index] += eps
        minus = params.copy()
        minus[index] -= eps
        loss_plus, _ = model.loss_and_grad(plus, inputs, labels)
        loss_minus, _ = model.loss_and_grad(minus, inputs, labels)
        fd = (loss_plus - loss_minus) / (2 * eps)
        assert abs(fd - grad[index]) < 1e-5 * max(1.0, abs(fd))


def test_gradient_dtype_follows_params():
    model = small_model()
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(4, 6)).astype(np.float32)
    labels = rng.integers(0, 4, size=4)
    _, grad32 = model.loss_and_grad(model.init_params(0), inputs, labels)
    assert grad32.dtype == np.float32


def test_weight_decay_increases_loss():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(16, 6))
    labels = rng.integers(0, 4, size=16)
    plain = small_model(weight_decay=0.0)
    decayed = small_model(weight_decay=1e-2)
    params = plain.init_params(0, dtype=np.float64)
    loss_plain, _ = plain.loss_and_grad(params, inputs, labels)
    loss_decayed, _ = decayed.loss_and_grad(params, inputs, labels)
    assert loss_decayed > loss_plain


def test_weight_decay_does_not_touch_biases():
    model = small_model(weight_decay=1e-2)
    params = model.init_params(0, dtype=np.float64)
    inputs = np.zeros((2, 6))
    labels = np.zeros(2, dtype=np.int64)
    # With zero inputs, data gradients w.r.t. input weights are zero, so
    # the bias gradient should carry no decay term for a zero bias.
    _, grad = model.loss_and_grad(params, inputs, labels)
    b_in = model.layout.view(grad, "b_in")
    w_in_view = model.layout.slice_of("w_in")
    assert np.allclose(
        grad[w_in_view], 1e-2 * params[w_in_view]
    )  # pure decay on weights (no data signal through zero inputs)
    assert not np.allclose(b_in, 1e-2 * np.ones_like(b_in))


def test_logits_shape_and_evaluate():
    model = small_model()
    dataset_like = np.random.default_rng(0).normal(size=(10, 6))
    params = model.init_params(0)
    logits = model.logits(params, dataset_like.astype(np.float32))
    assert logits.shape == (10, 4)
    labels = logits.argmax(axis=1)
    assert model.evaluate(params, dataset_like.astype(np.float32), labels) == 1.0


def test_registered_model_matches_registered_dataset():
    model = make_model("resnet32-sim")
    dataset = make_dataset("cifar10-sim")
    assert model.config.input_dim == dataset.input_dim
    assert model.config.n_classes == dataset.n_classes


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        ModelConfig(name="bad", input_dim=0, hidden_dim=4, n_blocks=1, n_classes=2)
    with pytest.raises(ConfigurationError):
        ModelConfig(
            name="bad",
            input_dim=4,
            hidden_dim=4,
            n_blocks=1,
            n_classes=2,
            weight_decay=-1e-4,
        )
