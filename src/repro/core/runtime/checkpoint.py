"""Checkpoint store: persist and restore training progress.

Sync-Switch's switch mechanism is built on the framework's
checkpoint/restore functions (paper Section V): every protocol switch
checkpoints model parameters, optimizer slots and progress counters,
then relaunches tasks from the checkpoint under the new protocol.
This store keeps those snapshots (in memory, exact to the bit) and
records their bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distsim.engines.base import TrainingSession
from repro.errors import ConfigurationError

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One immutable training snapshot."""

    tag: str
    step: int
    sim_time: float
    ps_state: dict

    @property
    def version(self) -> int:
        """Parameter version at checkpoint time."""
        return int(self.ps_state["version"])


class CheckpointStore:
    """Ordered collection of checkpoints with save/restore."""

    def __init__(self, keep_last: int = 8):
        if keep_last < 1:
            raise ConfigurationError("keep_last must be >= 1")
        self.keep_last = keep_last
        self._checkpoints: list[Checkpoint] = []

    def save(self, session: TrainingSession, tag: str) -> Checkpoint:
        """Snapshot the session's numeric state."""
        checkpoint = Checkpoint(
            tag=tag,
            step=session.step,
            sim_time=session.clock.now,
            ps_state=session.ps.state(),
        )
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.keep_last:
            self._checkpoints.pop(0)
        return checkpoint

    def restore(
        self, session: TrainingSession, checkpoint: Checkpoint | None = None
    ) -> Checkpoint:
        """Load a checkpoint (latest by default) into the session.

        Restores parameters, optimizer slots and the step counter —
        exactly what TensorFlow's saver restores.  Simulated time is
        *not* rewound: restarting costs wall-clock, it does not undo it.
        """
        checkpoint = checkpoint or self.latest
        if checkpoint is None:
            raise ConfigurationError("no checkpoint to restore")
        session.ps.load_state(checkpoint.ps_state)
        session.step = checkpoint.step
        return checkpoint

    @property
    def latest(self) -> Checkpoint | None:
        """Most recent checkpoint, if any."""
        return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __iter__(self):
        return iter(self._checkpoints)
