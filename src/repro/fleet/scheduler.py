"""Pluggable fleet scheduling policies.

A scheduler decides, at every fleet event, which queued jobs to admit
onto the free workers — and, for the preemptive policy, how many
workers to reclaim from running ASP-phase jobs when the queue is
starved.  Three classic policies are provided:

* ``fifo`` — strict arrival order with head-of-line blocking: nothing
  behind a job that does not fit is admitted.
* ``sjf`` — smallest-job-first by estimated service time; short jobs
  overtake long ones, shrinking mean JCT under contention.
* ``best-fit`` — bin-packing: repeatedly admit the queued job that
  fills the free capacity most tightly; when nothing fits it asks the
  simulator to preempt workers from ASP-phase jobs (BSP phases are
  barrier-synchronized and are never shrunk).

Schedulers are deterministic: ties break on arrival order then job id.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fleet.workload import JobRequest, estimate_service_time

__all__ = [
    "SchedulerPolicy",
    "FifoScheduler",
    "SmallestJobFirstScheduler",
    "BestFitScheduler",
    "SCHEDULERS",
    "make_scheduler",
]


class SchedulerPolicy:
    """Base admission policy (subclasses override :meth:`admit`)."""

    name = "base"
    #: Whether the policy may ask for ASP-phase preemption.
    preemptive = False

    def admit(
        self, queue: list[JobRequest], free_workers: int, scale: float
    ) -> list[JobRequest]:
        """Jobs to admit now, in admission order (subset of ``queue``)."""
        raise NotImplementedError

    def preemption_request(
        self, queue: list[JobRequest], free_workers: int, scale: float
    ) -> int:
        """Workers the policy wants reclaimed from ASP-phase jobs (0 = none)."""
        return 0


class FifoScheduler(SchedulerPolicy):
    """Arrival order with head-of-line blocking."""

    name = "fifo"

    def admit(self, queue, free_workers, scale):
        admitted = []
        for request in queue:
            if request.n_workers > free_workers:
                break
            admitted.append(request)
            free_workers -= request.n_workers
        return admitted


class SmallestJobFirstScheduler(SchedulerPolicy):
    """Shortest estimated service time first (no blocking)."""

    name = "sjf"

    def admit(self, queue, free_workers, scale):
        ordered = sorted(
            queue,
            key=lambda request: (
                estimate_service_time(
                    request.setup_index, request.percent, scale
                ),
                request.arrival,
                request.job_id,
            ),
        )
        admitted = []
        for request in ordered:
            if request.n_workers <= free_workers:
                admitted.append(request)
                free_workers -= request.n_workers
        return admitted


class BestFitScheduler(SchedulerPolicy):
    """Tightest-fit bin-packing with ASP-phase preemption."""

    name = "best-fit"
    preemptive = True

    def admit(self, queue, free_workers, scale):
        remaining = list(queue)
        admitted = []
        while remaining:
            fitting = [
                request
                for request in remaining
                if request.n_workers <= free_workers
            ]
            if not fitting:
                break
            # Tightest fit; ties go to the oldest request.
            best = min(
                fitting,
                key=lambda request: (
                    free_workers - request.n_workers,
                    request.arrival,
                    request.job_id,
                ),
            )
            admitted.append(best)
            free_workers -= best.n_workers
            remaining.remove(best)
        return admitted

    def preemption_request(self, queue, free_workers, scale):
        if not queue:
            return 0
        head = min(queue, key=lambda request: (request.arrival, request.job_id))
        return max(head.n_workers - free_workers, 0)


SCHEDULERS: dict[str, type[SchedulerPolicy]] = {
    policy.name: policy
    for policy in (FifoScheduler, SmallestJobFirstScheduler, BestFitScheduler)
}


def make_scheduler(name: str) -> SchedulerPolicy:
    """Instantiate a scheduler by registry name."""
    if name not in SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name]()
