"""Tests for the incremental Algorithm 1 session (fleet tuning)."""

import pytest

from repro.core.search import OfflineTimingSearch, SearchConfig
from repro.errors import SearchError
from repro.fleet.tuning import TimingSearchSession


def deterministic_trial(fraction, run):
    """Noise-free trial: accurate above 0.2, fast below 1.0."""
    accuracy = 0.90 if fraction >= 0.2 else 0.80
    return accuracy, 50.0 + 100.0 * fraction


CONFIG = SearchConfig(beta=0.05, max_settings=4, runs_per_setting=2, bsp_runs=2)


def drive(session):
    while not session.done:
        batch = session.next_batch()
        for run, fraction in enumerate(batch):
            session.record(*deterministic_trial(fraction, run))
    return session.result()


class TestEquivalenceWithOfflineSearch:
    """The session must replay Algorithm 1 exactly (same trial stream)."""

    def test_same_policy_target_and_trials(self):
        offline = OfflineTimingSearch(deterministic_trial, CONFIG).search()
        result = drive(TimingSearchSession(CONFIG))
        assert result.switch_fraction == offline.switch_fraction
        assert result.target_accuracy == offline.target_accuracy
        assert result.search_time == pytest.approx(offline.search_time)
        assert [
            (t.switch_fraction, t.run_index, t.accuracy, t.time, t.valid)
            for t in result.trials
        ] == [
            (t.switch_fraction, t.run_index, t.accuracy, t.time, t.valid)
            for t in offline.trials
        ]

    def test_supplied_target_skips_bsp_runs(self):
        config = SearchConfig(
            beta=0.05, max_settings=3, runs_per_setting=1,
            target_accuracy=0.90,
        )
        offline = OfflineTimingSearch(deterministic_trial, config).search()
        session = TimingSearchSession(config)
        first = session.next_batch()
        assert first == (0.5,)  # no BSP batch: straight to candidates
        session.record(*deterministic_trial(0.5, 0))
        result = drive(session)
        assert result.switch_fraction == offline.switch_fraction
        assert result.n_sessions == offline.n_sessions == 3


class TestSessionProtocol:
    def test_bsp_batch_first_then_candidates(self):
        session = TimingSearchSession(CONFIG)
        assert session.target_accuracy is None
        batch = session.next_batch()
        assert batch == (1.0, 1.0)
        assert session.awaiting == 2
        session.record(0.9, 100.0)
        session.record(0.9, 100.0)
        assert session.target_accuracy == pytest.approx(0.9)
        assert session.next_batch() == (0.5, 0.5)

    def test_next_batch_with_outstanding_trials_rejected(self):
        session = TimingSearchSession(CONFIG)
        session.next_batch()
        with pytest.raises(SearchError):
            session.next_batch()

    def test_record_without_batch_rejected(self):
        session = TimingSearchSession(CONFIG)
        with pytest.raises(SearchError):
            session.record(0.9, 100.0)

    def test_result_before_done_rejected(self):
        session = TimingSearchSession(CONFIG)
        with pytest.raises(SearchError):
            session.result()

    def test_done_session_yields_empty_batch(self):
        session = TimingSearchSession(CONFIG)
        drive(session)
        assert session.done
        assert session.next_batch() == ()

    def test_record_order_within_batch_is_irrelevant(self):
        def noisy(fraction, run):
            accuracy = (0.92 if run == 0 else 0.88) if fraction >= 0.2 else 0.8
            return accuracy, 50.0 + run
        config = SearchConfig(
            beta=0.05, max_settings=2, runs_per_setting=2, bsp_runs=1
        )
        forward = TimingSearchSession(config)
        backward = TimingSearchSession(config)
        while not forward.done:
            batch_f = forward.next_batch()
            batch_b = backward.next_batch()
            assert batch_f == batch_b
            outcomes = [
                noisy(fraction, run) for run, fraction in enumerate(batch_f)
            ]
            for outcome in outcomes:
                forward.record(*outcome)
            for outcome in reversed(outcomes):
                backward.record(*outcome)
        # Same policy and total cost either way (the mean test is
        # order-free; only per-trial run indices may swap).
        assert (
            forward.result().switch_fraction
            == backward.result().switch_fraction
        )
        assert forward.result().search_time == pytest.approx(
            backward.result().search_time
        )
