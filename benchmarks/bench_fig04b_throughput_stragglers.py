"""Regenerates the paper's Figure 4(b).

BSP vs ASP throughput under {0,1,2} stragglers with 10/30 ms emulated
network latency (setup 1).

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import figure_4b


def bench_fig04b_throughput_stragglers(benchmark, runner, emit):
    report = benchmark.pedantic(
        figure_4b, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "fig04b_throughput_stragglers")
    assert report.rows, "artifact produced no measured rows"
