"""Structure tests for the end-to-end figure generators (tiny scale)."""

import pytest

from repro.experiments.endtoend import figure_10, figure_13, figure_14
from repro.experiments.figures import figure_5b
from repro.experiments.search_analysis import profile_model
from repro.experiments.setups import SETUPS


@pytest.fixture(scope="module")
def small_runner(tmp_path_factory):
    from repro.experiments.runner import ExperimentRunner

    cache = tmp_path_factory.mktemp("fig_cache")
    return ExperimentRunner(scale=0.01, seeds=2, cache_dir=cache)


def test_figure_10_covers_three_setups(small_runner):
    report = figure_10(small_runner)
    setups = report.column_values("setup")
    assert setups == [1, 1, 1, 2, 2, 2, 3, 3, 3]
    labels = {row["configuration"] for row in report.rows}
    assert labels == {"BSP", "ASP", "Sync-Switch"}


def test_figure_10_asp_fails_on_setup_3(small_runner):
    report = figure_10(small_runner)
    asp3 = next(
        row
        for row in report.rows
        if row["setup"] == 3 and row["configuration"] == "ASP"
    )
    assert asp3["accuracy"] == "FAIL"


def test_figure_10_syncswitch_faster_than_bsp(small_runner):
    report = figure_10(small_runner)
    for setup in (1, 2, 3):
        sync = next(
            row
            for row in report.rows
            if row["setup"] == setup and row["configuration"] == "Sync-Switch"
        )
        assert sync["normalized_time"] != "FAIL"
        assert sync["normalized_time"] < 1.0


def test_figure_13_marks_divergence(small_runner):
    report = figure_13(small_runner)
    asp_row = next(
        row for row in report.rows if row["switch_percent"] == 0.0
    )
    assert asp_row["accuracy"] == "FAIL"
    bsp_row = next(
        row for row in report.rows if row["switch_percent"] == 100.0
    )
    assert bsp_row["accuracy"] != "FAIL"


def test_figure_14_grid_is_complete(small_runner):
    report = figure_14(small_runner)
    assert len(report.rows) == 9  # 3 policies x 3 setups
    policies = {row["policy"] for row in report.rows}
    assert policies == {"P1 (6.25%)", "P2 (12.5%)", "P3 (50%)"}


def test_figure_5b_grid_matches_setup_sweep(small_runner):
    report = figure_5b(small_runner)
    assert tuple(report.column_values("bsp_percent")) == SETUPS[1].sweep_percents


def test_profile_model_built_from_sweep(small_runner):
    model = profile_model(small_runner, SETUPS[3])
    fractions = model.fractions
    assert 0.0 in fractions and 1.0 in fractions
    # ASP runs diverged -> accuracy 0 recorded at fraction 0
    assert model.mean_accuracy(0.0) < model.mean_accuracy(1.0)
