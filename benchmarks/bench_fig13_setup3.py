"""Regenerates the paper's Figure 13.

Setup 3 detail (16 workers): divergence of ASP / early switches,
survival of the 50% policy.

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import figure_13


def bench_fig13_setup3(benchmark, runner, emit):
    report = benchmark.pedantic(
        figure_13, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "fig13_setup3")
    assert report.rows, "artifact produced no measured rows"
