"""The Sync-Switch controller: policies applied to a live training job.

This is the user-facing entry point of the reproduction, equivalent to
the paper's standalone cluster manager plus its in-framework hooks
(Fig. 9).  Given a job, a cluster and a :class:`PolicyManager`, it:

1. materialises the offline plan (protocol + timing + configuration
   policies);
2. runs the BSP phase while watching per-worker throughput through the
   profiler/detector pipeline;
3. reacts to transient stragglers with the configured online policy
   (greedy protocol flips or elastic evictions);
4. performs every protocol switch through checkpoint -> actuate ->
   restore, charging the calibrated overhead; and
5. returns a :class:`JobResult` combining the training outcome with the
   intervention log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policies.manager import PolicyManager
from repro.core.policies.straggler import GreedyPolicy
from repro.core.runtime.actuator import ParallelActuator, SequentialActuator
from repro.core.runtime.checkpoint import CheckpointStore
from repro.core.runtime.detector import StragglerDetector
from repro.core.runtime.hooks import HookManager
from repro.core.runtime.profiler import ThroughputProfiler
from repro.distsim.cluster import Cluster, ClusterSpec
from repro.distsim.engines import synchronous_protocols
from repro.distsim.job import JobConfig, Segment
from repro.distsim.stragglers import StragglerSchedule
from repro.distsim.telemetry import TrainingResult
from repro.distsim.trainer import DistributedTrainer
from repro.errors import DivergenceError
from repro.obs.tracer import NULL_TRACER

__all__ = ["SyncSwitchController", "JobResult"]


@dataclass(frozen=True)
class JobResult:
    """Training outcome plus Sync-Switch bookkeeping."""

    result: TrainingResult
    policy_description: str
    interventions: tuple[dict, ...]
    bsp_steps: int
    async_steps: int

    @property
    def intervention_count(self) -> int:
        """Number of online-policy actions taken."""
        return len(self.interventions)


@dataclass
class SyncSwitchController:
    """Run one training job under the full Sync-Switch policy set."""

    job: JobConfig
    cluster_spec: ClusterSpec
    policies: PolicyManager
    stragglers: StragglerSchedule | None = None
    ambient_noise: bool = True
    parallel_actuator: bool = True
    profiler_window: int = 5
    overhead_time_scale: float = 1.0
    #: Link-quality multiplier on provisioning costs (worst tier
    #: bandwidth among the job's workers in heterogeneous fleets).
    overhead_bandwidth: float = 1.0
    tracer: object | None = None
    _interventions: list[dict] = field(default_factory=list)

    def __post_init__(self):
        if self.tracer is None:
            self.tracer = NULL_TRACER
        self.cluster = Cluster(self.cluster_spec)
        self.actuator = (
            ParallelActuator(
                time_scale=self.overhead_time_scale,
                bandwidth_factor=self.overhead_bandwidth,
            )
            if self.parallel_actuator
            else SequentialActuator(
                time_scale=self.overhead_time_scale,
                bandwidth_factor=self.overhead_bandwidth,
            )
        )
        self.trainer = DistributedTrainer(
            self.job,
            self.cluster,
            stragglers=self.stragglers,
            ambient_noise=self.ambient_noise,
            provisioning=self.actuator.provisioning,
            tracer=self.tracer,
        )
        self.hooks = HookManager(self.cluster_spec.n_workers)
        self.checkpoints = CheckpointStore()

    def run_job(self) -> JobResult:
        """Execute the job under the configured policies."""
        self._interventions = []
        session = self.trainer.new_session()
        plan = self.policies.build_plan(self.job, self.cluster_spec.n_workers)
        try:
            if len(plan.segments) == 1:
                self._run_static(session, plan.segments[0])
            else:
                self._run_switching(session, plan.segments)
        except DivergenceError:
            pass
        result = self.trainer.finalize(session, plan)
        precise_steps = self._synchronous_steps(result)
        return JobResult(
            result=result,
            policy_description=self.policies.describe(),
            interventions=tuple(self._interventions),
            bsp_steps=precise_steps,
            async_steps=result.completed_steps - precise_steps,
        )

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------
    def _run_static(self, session, segment: Segment) -> None:
        self.trainer.run_segment(
            session, segment, self.job.total_steps, charge_switch=False
        )

    def _run_switching(self, session, segments) -> None:
        first, second = segments[0], segments[1]
        targets = self._segment_targets(segments)
        online = self.policies.straggler
        if online is not None and online.reacts_online():
            finished_in_async = self._run_bsp_phase_online(
                session, first, second, targets[0], online
            )
            if finished_in_async:
                return
        else:
            self.trainer.run_segment(
                session, first, targets[0], charge_switch=False
            )
        # Each planned switch: checkpoint, actuate, restore, run next.
        for index in range(1, len(segments)):
            segment = segments[index]
            self._switch_protocol(session, segment)
            remaining = targets[index] - session.step
            if remaining > 0:
                self.trainer.run_segment(
                    session, segment, remaining, charge_switch=False
                )

    def _segment_targets(self, segments) -> tuple[int, ...]:
        """Cumulative step target of each plan segment.

        Same rounding as the trainer's segment targeting (and as
        :meth:`TimingPolicy.segment_boundaries`): the final segment is
        pinned to the full budget, so segments never overlap and
        together exhaust it.  For the two-phase plan the first target
        is exactly ``TimingPolicy.switch_step``.
        """
        total = self.job.total_steps
        targets = []
        cumulative = 0.0
        for index, segment in enumerate(segments):
            cumulative += segment.fraction
            if index == len(segments) - 1:
                targets.append(total)
            else:
                targets.append(int(round(cumulative * total)))
        return tuple(targets)

    def _run_bsp_phase_online(
        self, session, bsp_segment, async_segment, bsp_budget, policy
    ) -> bool:
        """BSP phase with straggler monitoring.

        Returns True when the whole job finished inside an ASP
        interlude (greedy policy near the end of the budget).
        """
        profiler = ThroughputProfiler(
            batch_size=self.job.batch_size, window=self.profiler_window
        )
        detector = StragglerDetector(
            consecutive=policy.detection_windows,
            clear_windows=policy.clear_windows,
        )
        evicted: list[int] = []
        bsp_done = self._protocol_steps_session(session, bsp_segment.protocol)

        while bsp_done < bsp_budget:
            stop = self._detection_stop(session, profiler, detector)
            start_step = session.step
            reason = self.trainer.run_segment(
                session,
                bsp_segment,
                bsp_budget - bsp_done,
                stop=stop,
                charge_switch=False,
            )
            bsp_done += session.step - start_step
            if reason == "completed" or bsp_done >= bsp_budget:
                break
            flagged = sorted(detector.flagged)
            if isinstance(policy, GreedyPolicy):
                finished = self._greedy_interlude(
                    session, bsp_segment, async_segment, detector, profiler, flagged
                )
                if finished:
                    return True
            else:
                self._elastic_evict(session, detector, profiler, flagged, evicted)

        if evicted:
            self._restore_cluster(session, evicted)
        return False

    def _greedy_interlude(
        self, session, bsp_segment, async_segment, detector, profiler, flagged
    ) -> bool:
        """Greedy policy: ASP until the cluster is clear again."""
        remaining = self.job.total_steps - session.step
        if remaining <= 0:
            # Already at the step budget: switching protocols now would
            # charge a pointless checkpoint->actuate->restore overhead.
            return True
        self._log_intervention(
            session, "greedy-switch-to-asp", {"flagged": flagged}
        )
        self._switch_protocol(session, async_segment)
        profiler.reset()
        detector.reset()
        stop = self._clearance_stop(session, profiler, detector)
        reason = self.trainer.run_segment(
            session, async_segment, remaining, stop=stop, charge_switch=False
        )
        if reason == "completed":
            return True
        self._log_intervention(session, "greedy-switch-back-to-bsp", {})
        profiler.reset()
        detector.reset()
        # Switch back to BSP (second switch of the round trip).
        self._switch_protocol(session, bsp_segment)
        return False

    def _elastic_evict(
        self, session, detector, profiler, flagged, evicted
    ) -> None:
        """Elastic policy: drop stragglers from the BSP cluster."""
        for worker in flagged:
            if not self.cluster.is_active(worker) or self.cluster.n_active <= 2:
                continue
            self.cluster.evict(worker)
            evicted.append(worker)
            detector.unflag(worker)
            profiler.forget(worker)
            self.trainer.charge_resize_overhead(session, "evict")
            self._log_intervention(session, "elastic-evict", {"worker": worker})
        detector.reset()

    def _restore_cluster(self, session, evicted) -> None:
        """Elastic policy: bring evicted workers back for the ASP phase."""
        self.cluster.restore_all()
        self.trainer.charge_resize_overhead(session, "restore")
        self._log_intervention(
            session, "elastic-restore", {"workers": sorted(evicted)}
        )
        evicted.clear()

    def _switch_protocol(self, session, segment: Segment) -> None:
        """Checkpoint -> actuate -> restore -> (caller runs new engine)."""
        checkpoint = self.checkpoints.save(session, tag=f"pre-{segment.protocol}")
        seconds = self.actuator.actuate_switch(
            self.hooks,
            segment.protocol,
            {
                key: value
                for key, value in segment.options.items()
                if isinstance(value, (int, float, str))
            },
        )
        session.clock.advance(seconds)
        session.telemetry.record_overhead(session.clock.now, "switch", seconds)
        if self.tracer.wants("job"):
            self.tracer.span(
                "switch",
                "overhead",
                session.clock.now - seconds,
                seconds,
                tid=1,
                args={"to": segment.protocol},
            )
        self.checkpoints.restore(session, checkpoint)

    # ------------------------------------------------------------------
    # stop conditions (the profiler/detector feed)
    # ------------------------------------------------------------------
    def _detection_stop(self, session, profiler, detector):
        """Stop the BSP engine when a straggler is detected."""
        cursor = len(session.telemetry.worker_durations)

        def stop(current_session) -> str | None:
            nonlocal cursor
            entries = current_session.telemetry.worker_durations
            while cursor < len(entries):
                _, worker, duration = entries[cursor]
                if duration > 0:
                    profiler.observe(worker, duration)
                cursor += 1
            newly = detector.observe_window(profiler.throughputs())
            if newly:
                return "straggler-detected"
            return None

        return stop

    def _clearance_stop(self, session, profiler, detector):
        """Stop the ASP interlude when the cluster looks clear again."""
        cursor = len(session.telemetry.worker_durations)
        pushes = 0
        window = max(self.cluster.n_active, 1)

        def stop(current_session) -> str | None:
            nonlocal cursor, pushes
            entries = current_session.telemetry.worker_durations
            while cursor < len(entries):
                _, worker, duration = entries[cursor]
                if duration > 0:
                    profiler.observe(worker, duration)
                cursor += 1
                pushes += 1
            if pushes >= window:
                pushes = 0
                detector.observe_window(profiler.throughputs())
                if detector.stable_clear():
                    return "cluster-clear"
            return None

        return stop

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _log_intervention(self, session, kind: str, details: dict) -> None:
        self._interventions.append(
            {
                "time": session.clock.now,
                "step": session.step,
                "kind": kind,
                **details,
            }
        )
        if self.tracer.wants("job"):
            self.tracer.instant(
                kind,
                "intervention",
                session.clock.now,
                tid=1,
                args={"step": session.step, **details},
            )

    @staticmethod
    def _synchronous_steps(result: TrainingResult) -> int:
        """Steps trained under barrier-style (registry-synchronous) protocols."""
        synchronous = synchronous_protocols()
        return sum(
            record["end_step"] - record["start_step"]
            for record in result.segment_summary
            if record["protocol"] in synchronous
            and record["end_step"] is not None
        )

    @staticmethod
    def _protocol_steps_session(session, protocol: str) -> int:
        return sum(
            record.steps
            for record in session.telemetry.segments
            if record.protocol == protocol
        )
