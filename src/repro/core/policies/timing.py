"""Timing policy: when to switch between the scheduled protocols.

The offline timing policy for the paper's two-phase plan is a single
number — the fraction of the step budget trained with the precise
protocol before switching (paper Table I: 6.25% / 12.5% / 50% for the
three setups).  It is found by the offline binary search
(:mod:`repro.core.search.binary_search`) for new jobs and reused
directly for recurring ones.

N-segment schedules generalise the single number to a per-segment
fraction vector (summing to 1): :meth:`TimingPolicy.for_schedule`
builds one, :meth:`TimingPolicy.build_plan` materialises it against a
:class:`~repro.core.policies.protocol.ProtocolSchedule`, and
:meth:`TimingPolicy.segment_boundaries` exposes the exact step
boundaries the trainer uses (cumulative round-half-to-even, final
segment pinned to the full budget — non-overlapping and
budget-exhausting by construction).  A policy without a fraction
vector is the two-phase special case and builds plans exactly as it
always has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies.config import ConfigurationPolicy
from repro.core.policies.protocol import ProtocolPolicy, ProtocolSchedule
from repro.distsim.job import JobConfig, Segment, TrainingPlan
from repro.errors import ConfigurationError

__all__ = ["TimingPolicy"]


@dataclass(frozen=True)
class TimingPolicy:
    """Switch point(s) plus provenance.

    ``fractions`` is ``None`` for the classic two-phase policy (the
    single ``switch_fraction`` splits the budget) or the full
    per-segment fraction vector of an N-segment schedule, in which
    case ``switch_fraction`` equals its first entry (the precise
    phase's share).
    """

    switch_fraction: float
    source: str = "manual"
    fractions: tuple[float, ...] | None = None

    def __post_init__(self):
        if not 0.0 <= self.switch_fraction <= 1.0:
            raise ConfigurationError("switch_fraction must be in [0, 1]")
        if self.fractions is None:
            return
        fractions = tuple(float(value) for value in self.fractions)
        object.__setattr__(self, "fractions", fractions)
        if not fractions:
            raise ConfigurationError("fractions must not be empty")
        for value in fractions:
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    "segment fractions must be in [0, 1]"
                )
        total = sum(fractions)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"segment fractions must sum to 1, got {total}"
            )
        if abs(fractions[0] - self.switch_fraction) > 1e-9:
            raise ConfigurationError(
                "switch_fraction must equal the first segment fraction"
            )

    @classmethod
    def for_schedule(
        cls, fractions, source: str = "schedule"
    ) -> "TimingPolicy":
        """A timing policy carrying a full per-segment fraction vector."""
        values = tuple(float(value) for value in fractions)
        first = values[0] if values else 0.0
        return cls(first, source=source, fractions=values)

    @property
    def switch_percent(self) -> float:
        """Switch point in percent (paper notation)."""
        return self.switch_fraction * 100.0

    def switch_step(self, total_steps: int) -> int:
        """Absolute step at which the first switch happens."""
        return int(round(self.switch_fraction * total_steps))

    def plan_fractions(self) -> tuple[float, ...]:
        """Per-segment fractions this policy implies.

        Two-phase policies derive the vector from ``switch_fraction``
        (degenerating to a single segment at 0.0/1.0); schedule
        policies return their vector verbatim.
        """
        if self.fractions is not None:
            return self.fractions
        if self.switch_fraction in (0.0, 1.0):
            return (1.0,)
        return (self.switch_fraction, 1.0 - self.switch_fraction)

    def segment_boundaries(self, total_steps: int) -> tuple[int, ...]:
        """Cumulative end step of each segment.

        Mirrors the trainer's segment targeting exactly: boundary ``i``
        is ``round(cumulative_fraction_i * total_steps)`` and the final
        boundary is pinned to ``total_steps``, so consecutive segments
        never overlap and together exhaust the budget.
        """
        fractions = self.plan_fractions()
        boundaries = []
        cumulative = 0.0
        for index, fraction in enumerate(fractions):
            cumulative += fraction
            if index == len(fractions) - 1:
                boundaries.append(total_steps)
            else:
                boundaries.append(int(round(cumulative * total_steps)))
        return tuple(boundaries)

    def build_plan(
        self,
        job: JobConfig,
        n_workers: int,
        protocol_policy: ProtocolPolicy | ProtocolSchedule | None = None,
        config_policy: ConfigurationPolicy | None = None,
    ) -> TrainingPlan:
        """Materialise the plan with configured hyper-parameters."""
        protocol_policy = protocol_policy or ProtocolPolicy()
        config_policy = config_policy or ConfigurationPolicy()
        if self.fractions is not None:
            return self._build_schedule_plan(
                job, n_workers, protocol_policy, config_policy
            )
        protocols = protocol_policy.protocols
        if len(protocols) != 2:
            raise ConfigurationError(
                f"two-phase timing policy cannot drive a "
                f"{len(protocols)}-protocol schedule; build it with "
                "TimingPolicy.for_schedule"
            )
        first, second = protocols
        first_options = config_policy.options_for(first, job, n_workers)
        second_options = config_policy.options_for(second, job, n_workers)
        if self.switch_fraction == 0.0:
            return TrainingPlan((Segment(second, 1.0, second_options),))
        if self.switch_fraction == 1.0:
            return TrainingPlan((Segment(first, 1.0, first_options),))
        return TrainingPlan(
            (
                Segment(first, self.switch_fraction, first_options),
                Segment(second, 1.0 - self.switch_fraction, second_options),
            )
        )

    def _build_schedule_plan(
        self,
        job: JobConfig,
        n_workers: int,
        protocol_policy: ProtocolPolicy | ProtocolSchedule,
        config_policy: ConfigurationPolicy,
    ) -> TrainingPlan:
        protocols = protocol_policy.protocols
        assert self.fractions is not None
        if len(protocols) != len(self.fractions):
            raise ConfigurationError(
                f"schedule has {len(protocols)} protocols but the timing "
                f"policy carries {len(self.fractions)} fractions"
            )
        segments = tuple(
            Segment(
                protocol,
                fraction,
                config_policy.options_for(protocol, job, n_workers),
            )
            for protocol, fraction in zip(protocols, self.fractions)
            if fraction > 0.0
        )
        return TrainingPlan(segments)
