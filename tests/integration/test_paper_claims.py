"""Integration tests for the paper's qualitative claims.

These run real (small-scale) simulations and assert the *shape* of the
paper's results — orderings and divergence behaviour, not absolute
numbers.  They use a moderate scale so the phenomena are visible above
seed noise while staying test-suite friendly.
"""

import pytest

from repro.experiments.aggregate import accuracy_stats, time_stats
from repro.experiments.runner import ExperimentRunner
from repro.experiments.setups import SETUPS


@pytest.fixture(scope="module")
def claims_runner(tmp_path_factory):
    cache = tmp_path_factory.mktemp("claims_cache")
    return ExperimentRunner(scale=0.02, seeds=2, cache_dir=cache)


@pytest.fixture(scope="module")
def setup1_runs(claims_runner):
    return {
        "bsp": claims_runner.run_many(
            SETUPS[1], {"kind": "switch", "percent": 100.0}
        ),
        "asp": claims_runner.run_many(
            SETUPS[1], {"kind": "switch", "percent": 0.0}
        ),
        "sync": claims_runner.run_many(
            SETUPS[1], {"kind": "switch", "percent": 6.25}
        ),
    }


class TestTimeOrdering:
    """ASP < Sync-Switch < BSP in total training time (Figs. 10-11)."""

    def test_asp_is_fastest(self, setup1_runs):
        asp = time_stats(setup1_runs["asp"])["time_mean"]
        sync = time_stats(setup1_runs["sync"])["time_mean"]
        bsp = time_stats(setup1_runs["bsp"])["time_mean"]
        assert asp < sync < bsp

    def test_syncswitch_speedup_is_substantial(self, setup1_runs):
        """Paper: 5.13X for setup 1; require at least 2X at test scale."""
        sync = time_stats(setup1_runs["sync"])["time_mean"]
        bsp = time_stats(setup1_runs["bsp"])["time_mean"]
        assert bsp / sync > 2.0

    def test_all_protocols_complete_on_8_workers(self, setup1_runs):
        for runs in setup1_runs.values():
            assert all(not run.diverged for run in runs)


class TestAccuracyOrdering:
    """Sync-Switch tracks BSP accuracy; ASP trails (Fig. 10b)."""

    def test_syncswitch_close_to_bsp(self, setup1_runs):
        bsp = accuracy_stats(setup1_runs["bsp"])["accuracy_mean"]
        sync = accuracy_stats(setup1_runs["sync"])["accuracy_mean"]
        assert sync >= bsp - 0.02

    def test_all_runs_learn_something(self, setup1_runs):
        for runs in setup1_runs.values():
            stats = accuracy_stats(runs)
            assert stats["accuracy_mean"] > 0.5  # 10-class chance is 0.1


class TestScaleDivergence:
    """Setup 3: ASP (and pre-decay switching) diverges; BSP and the 50%
    policy survive (Fig. 13, Table I)."""

    def test_asp_diverges_on_16_workers(self, claims_runner):
        runs = claims_runner.run_many(
            SETUPS[3], {"kind": "switch", "percent": 0.0}
        )
        assert all(run.diverged for run in runs)

    def test_early_switch_is_harmful_on_16_workers(self, claims_runner):
        """Pre-decay switching at n=16 diverges or degrades.

        The paper observes outright divergence for every switch point
        before the first LR decay; at the test suite's reduced scale
        the hot-phase exposure is shorter, so a warm 12.5% switch may
        survive — but it must be clearly worse than the 50% policy
        (divergence still reproduces from a cold ASP start, above).
        """
        early = claims_runner.run_many(
            SETUPS[3], {"kind": "switch", "percent": 12.5}
        )
        policy = claims_runner.run_many(
            SETUPS[3], {"kind": "switch", "percent": 50.0}
        )
        if all(run.diverged for run in early):
            return  # full paper behaviour
        early_acc = accuracy_stats(early)["accuracy_mean"]
        policy_acc = accuracy_stats(policy)["accuracy_mean"]
        assert early_acc < policy_acc

    def test_bsp_survives_on_16_workers(self, claims_runner):
        runs = claims_runner.run_many(
            SETUPS[3], {"kind": "switch", "percent": 100.0}
        )
        assert all(not run.diverged for run in runs)

    def test_policy_3_survives_and_saves_time(self, claims_runner):
        bsp = claims_runner.run_many(
            SETUPS[3], {"kind": "switch", "percent": 100.0}
        )
        sync = claims_runner.run_many(
            SETUPS[3], {"kind": "switch", "percent": 50.0}
        )
        assert all(not run.diverged for run in sync)
        assert (
            time_stats(sync)["time_mean"] < time_stats(bsp)["time_mean"]
        )


class TestThroughputClaims:
    """Fig. 4: ASP throughput far above BSP for setup 1."""

    def test_asp_throughput_multiple_of_bsp(self, setup1_runs):
        bsp = [r.segment_throughput("bsp") for r in setup1_runs["bsp"]]
        asp = [r.segment_throughput("asp") for r in setup1_runs["asp"]]
        assert min(asp) > 3.0 * max(bsp)

    def test_switch_overhead_is_small_fraction(self, setup1_runs):
        for run in setup1_runs["sync"]:
            assert run.total_overhead < 0.15 * run.total_time


class TestStalenessClaims:
    """Realized staleness ~ cluster size in ASP; zero in BSP."""

    def test_bsp_has_zero_staleness(self, setup1_runs):
        for run in setup1_runs["bsp"]:
            assert run.staleness["mean"] == 0.0

    def test_asp_staleness_tracks_cluster(self, setup1_runs):
        for run in setup1_runs["asp"]:
            assert 4.0 <= run.staleness["mean"] <= 10.0
