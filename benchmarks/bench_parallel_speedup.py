"""Parallel-executor speedup on a representative switch-timing sweep.

Unlike the artifact benchmarks, this one is cold-cache by design: the
benchmarked call times the Fig. 5b-style sweep grid at ``jobs=N`` in a
fresh temporary cache, a single extra pass provides the ``jobs=1``
baseline, and both land in the benchmark ``extra_info`` and
``results/parallel_speedup.json`` so the ``BENCH_*.json`` trajectory
captures the parallelism win alongside the regeneration-from-logs
numbers.  With an explicit ``--jobs 1`` the probe stays fully serial
(no extra pass, speedup 1.0).
"""


def bench_parallel_sweep_speedup(
    benchmark, speedup_jobs, cold_sweep_timer, record_parallel_speedup
):
    parallel_s = benchmark.pedantic(
        cold_sweep_timer,
        args=(speedup_jobs,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    serial_s = cold_sweep_timer(1) if speedup_jobs > 1 else parallel_s
    info = record_parallel_speedup(speedup_jobs, serial_s, parallel_s)
    benchmark.extra_info.update(info)
    assert info["speedup"] is not None
