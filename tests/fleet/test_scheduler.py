"""Tests for the fleet scheduling policies."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.scheduler import (
    SCHEDULERS,
    BestFitScheduler,
    FifoScheduler,
    SmallestJobFirstScheduler,
    make_scheduler,
)
from repro.fleet.workload import JobRequest

SCALE = 0.008


def job(job_id, arrival=0.0, workers=8, policy="sync-switch"):
    return JobRequest(
        job_id=job_id,
        arrival=arrival,
        setup_index=1,
        n_workers=workers,
        sync_policy=policy,
    )


class TestRegistry:
    def test_known_schedulers(self):
        assert set(SCHEDULERS) == {"fifo", "sjf", "best-fit", "slo"}
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("round-robin")


class TestFifo:
    def test_admits_in_arrival_order(self):
        queue = [job(0, 0.0, 4), job(1, 1.0, 4), job(2, 2.0, 4)]
        admitted = FifoScheduler().admit(queue, 8, SCALE)
        assert [request.job_id for request in admitted] == [0, 1]

    def test_head_of_line_blocking(self):
        # The head does not fit, so nothing behind it runs either.
        queue = [job(0, 0.0, 8), job(1, 1.0, 2)]
        assert FifoScheduler().admit(queue, 4, SCALE) == []


class TestSmallestJobFirst:
    def test_shorter_job_overtakes(self):
        # ASP jobs have a far shorter estimated service time than BSP.
        queue = [job(0, 0.0, 8, "bsp"), job(1, 1.0, 8, "asp")]
        admitted = SmallestJobFirstScheduler().admit(queue, 8, SCALE)
        assert [request.job_id for request in admitted] == [1]

    def test_equal_estimates_tie_on_arrival(self):
        queue = [job(1, 1.0, 4), job(0, 0.0, 4)]
        admitted = SmallestJobFirstScheduler().admit(queue, 8, SCALE)
        assert [request.job_id for request in admitted] == [0, 1]


class TestBestFit:
    def test_prefers_tightest_fit(self):
        queue = [job(0, 0.0, 4), job(1, 1.0, 10)]
        admitted = BestFitScheduler().admit(queue, 10, SCALE)
        assert [request.job_id for request in admitted] == [1]

    def test_packs_repeatedly(self):
        queue = [job(0, 0.0, 4), job(1, 1.0, 6), job(2, 2.0, 4)]
        admitted = BestFitScheduler().admit(queue, 10, SCALE)
        assert [request.job_id for request in admitted] == [1, 0]

    def test_preemption_request_for_oldest(self):
        scheduler = BestFitScheduler()
        assert scheduler.preemptive
        queue = [job(1, 2.0, 8), job(0, 1.0, 16)]
        assert scheduler.preemption_request(queue, 4, SCALE) == 12

    def test_no_preemption_when_satisfied_or_empty(self):
        scheduler = BestFitScheduler()
        assert scheduler.preemption_request([], 4, SCALE) == 0
        assert scheduler.preemption_request([job(0, 0.0, 4)], 8, SCALE) == 0

    def test_non_preemptive_policies(self):
        assert not FifoScheduler().preemptive
        assert FifoScheduler().preemption_request([job(0)], 0, SCALE) == 0
