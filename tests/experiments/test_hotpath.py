"""Tests for the hot-path benchmark harness (no full benchmark runs)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.hotpath import (
    BENCH_ROWS,
    FULL_STEPS,
    QUICK_STEPS,
    bench_engine,
    check_regression,
    render_hotpath_report,
    speedup_payload,
)


def payload(scale: float = 1.0, calibration: float = 100.0) -> dict:
    return {
        "version": 1,
        "quick": True,
        "workload": {
            "model": "resnet32-sim",
            "dataset": "cifar10-sim",
            "n_workers": 8,
            "batch_size": 128,
        },
        "engines": {
            name: {
                "steps": 100,
                "batch_size": BENCH_ROWS[name][1],
                "steps_per_sec": base * scale,
                "elapsed_s": 100 / (base * scale),
            }
            for name, base in (("bsp", 2000.0), ("asp", 1000.0))
        },
        "fig5b_cell_s": 0.5 / scale,
        "calibration": calibration,
        "machine": {"python": "3", "numpy": "2", "platform": "test"},
    }


def test_every_row_has_a_budget():
    assert set(FULL_STEPS) == set(BENCH_ROWS)
    assert set(QUICK_STEPS) == set(BENCH_ROWS)
    assert all(QUICK_STEPS[name] <= FULL_STEPS[name] for name in BENCH_ROWS)


def test_bench_engine_measures_steps():
    result = bench_engine("asp", steps=24, repeats=1, batch_size=16)
    assert result["steps"] == 24
    assert result["steps_per_sec"] > 0
    assert result["batch_size"] == 16


def test_bench_engine_validation():
    with pytest.raises(ConfigurationError):
        bench_engine("raft", steps=10)
    with pytest.raises(ConfigurationError):
        bench_engine("asp", steps=0)


def test_check_regression_passes_on_equal_machine_relative():
    # Half the steps/sec on half the calibration = same machine-relative.
    current = payload(scale=0.5, calibration=50.0)
    assert check_regression(current, payload()) == []


def test_check_regression_flags_real_drop():
    current = payload(scale=0.5)  # same calibration, half the speed
    messages = check_regression(current, payload(), tolerance=0.25)
    assert len(messages) == 2
    assert any("asp" in message for message in messages)


def test_check_regression_reads_speedup_artifacts():
    artifact = speedup_payload(payload(scale=0.5), payload())
    assert check_regression(payload(), artifact) == []


def test_speedup_payload_ratios():
    artifact = speedup_payload(payload(), payload(scale=2.0))
    assert artifact["speedup"]["asp"] == pytest.approx(2.0)
    assert artifact["speedup"]["fig5b_cell"] == pytest.approx(2.0)
    assert "baseline" in artifact and "optimized" in artifact


def test_render_report_mentions_every_row():
    text = render_hotpath_report(payload())
    assert "asp" in text and "fig5b" in text and "calibration" in text


def test_tracer_off_row_exists_and_runs_via_trainer():
    assert "asp-tracer-off" in BENCH_ROWS
    result = bench_engine(
        "asp", steps=24, repeats=1, batch_size=16, via_trainer=True
    )
    assert result["steps"] == 24
    assert result["steps_per_sec"] > 0


def test_check_regression_aliases_tracer_off_to_kernel_baseline():
    # A baseline payload that predates the tracer-off row still bounds
    # it: the row is compared against the asp-kernel baseline number.
    baseline = payload()
    baseline["engines"]["asp-kernel"] = dict(
        baseline["engines"]["asp"], batch_size=16
    )
    current = payload()
    current["engines"]["asp-tracer-off"] = {
        "steps": 100,
        "batch_size": 16,
        "steps_per_sec": 100.0,  # far below the 1000.0 kernel baseline
        "elapsed_s": 1.0,
    }
    messages = check_regression(current, baseline, tolerance=0.25)
    assert any(
        "asp-tracer-off" in message and "asp-kernel" in message
        for message in messages
    )
    # Within tolerance: no message for the aliased row.
    current["engines"]["asp-tracer-off"]["steps_per_sec"] = 990.0
    assert check_regression(current, baseline, tolerance=0.25) == []
