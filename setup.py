"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so editable
installs must go through ``setup.py develop``.  All metadata lives in
``pyproject.toml``; this file only hands control to setuptools.
"""

from setuptools import setup

setup()
