"""End-to-end evaluation figures: Figs. 10, 11, 12, 13 and 14.

Each generator collects its full grid of run specs up front and
prefetches them as one deduplicated batch (parallel when the runner
has ``jobs > 1``) before assembling rows from the shared cache.
"""

from __future__ import annotations

from repro.experiments.aggregate import (
    accuracy_stats,
    divergence_rate,
    mean,
    time_stats,
)
from repro.experiments.curves import loss_and_accuracy_panels
from repro.experiments.reporting import Report
from repro.experiments.runner import ExperimentRunner
from repro.experiments.setups import SETUPS, ExperimentSetup

__all__ = [
    "figure_10",
    "figure_11",
    "figure_12",
    "figure_13",
    "figure_14",
]


def figure_10(runner: ExperimentRunner) -> Report:
    """Fig. 10: end-to-end time and accuracy across all three setups."""
    runner.prefetch(
        [
            (SETUPS[index], {"kind": "switch", "percent": percent})
            for index in (1, 2, 3)
            for percent in (100.0, 0.0, SETUPS[index].policy_percent)
        ]
    )
    rows = []
    for index in (1, 2, 3):
        setup = SETUPS[index]
        bsp = runner.run_many(setup, {"kind": "switch", "percent": 100.0})
        asp = runner.run_many(setup, {"kind": "switch", "percent": 0.0})
        sync = runner.run_many(
            setup, {"kind": "switch", "percent": setup.policy_percent}
        )
        bsp_time = time_stats(bsp)["time_mean"]
        for label, runs in (("BSP", bsp), ("ASP", asp), ("Sync-Switch", sync)):
            stats = accuracy_stats(runs) | time_stats(runs)
            failed = divergence_rate(runs) == 1.0
            rows.append(
                {
                    "setup": index,
                    "configuration": label,
                    "accuracy": "FAIL" if failed else stats["accuracy_mean"],
                    "normalized_time": (
                        "FAIL"
                        if failed
                        else (
                            stats["time_mean"] / bsp_time
                            if stats["time_mean"] and bsp_time
                            else None
                        )
                    ),
                    "diverged_runs": stats["diverged"],
                }
            )
    paper_rows = []
    for index in (1, 2, 3):
        setup = SETUPS[index]
        paper_rows.extend(
            [
                {
                    "setup": index,
                    "configuration": "BSP",
                    "accuracy": setup.paper["bsp_accuracy"],
                    "normalized_time": 1.0,
                },
                {
                    "setup": index,
                    "configuration": "ASP",
                    "accuracy": setup.paper["asp_accuracy"] or "FAIL",
                    "normalized_time": setup.paper["normalized_time_asp"]
                    or "FAIL",
                },
                {
                    "setup": index,
                    "configuration": "Sync-Switch",
                    "accuracy": setup.paper["syncswitch_accuracy"],
                    "normalized_time": setup.paper["normalized_time_syncswitch"],
                },
            ]
        )
    return Report(
        ident="Figure 10",
        title="End-to-end comparison (normalized training time, accuracy)",
        columns=[
            "setup",
            "configuration",
            "accuracy",
            "normalized_time",
            "diverged_runs",
        ],
        rows=rows,
        paper_rows=paper_rows,
        notes=[
            "paper: 1.66X-5.13X speedup vs BSP at similar accuracy; up to "
            "3.8% higher accuracy than ASP; ASP fails for setup 3",
        ],
    )


def _setup_detail(
    runner: ExperimentRunner, setup: ExperimentSetup, ident: str
) -> Report:
    """Shared generator for Figs. 11/12/13 (c)+(d) style grids.

    Per switch timing: converged accuracy and total training time, plus
    best-run loss/accuracy curve endpoints for the (a)/(b) panels.
    """
    percents = dict.fromkeys(
        (*setup.sweep_percents, 100.0, 0.0, setup.policy_percent)
    )
    runner.prefetch(
        [(setup, {"kind": "switch", "percent": percent}) for percent in percents]
    )
    rows = []
    bsp_runs = runner.run_many(setup, {"kind": "switch", "percent": 100.0})
    bsp_time = time_stats(bsp_runs)["time_mean"]
    for percent in setup.sweep_percents:
        runs = runner.run_many(setup, {"kind": "switch", "percent": percent})
        stats = accuracy_stats(runs) | time_stats(runs)
        failed = divergence_rate(runs) == 1.0
        final_losses = [
            run.final_loss
            for run in runs
            if not run.diverged and run.final_loss is not None
        ]
        rows.append(
            {
                "switch_percent": percent,
                "accuracy": "FAIL" if failed else stats["accuracy_mean"],
                "accuracy_std": None if failed else stats["accuracy_std"],
                "time_s": "FAIL" if failed else stats["time_mean"],
                "normalized_time": (
                    "FAIL"
                    if failed
                    else (
                        stats["time_mean"] / bsp_time
                        if stats["time_mean"] and bsp_time
                        else None
                    )
                ),
                "final_loss": "FAIL" if failed else mean(final_losses),
                "diverged_runs": stats["diverged"],
            }
        )
    # (a)/(b)-panel equivalents: best-run curves for BSP / ASP / policy.
    panel_runs = {}
    for label, percent in (
        ("BSP", 100.0),
        ("ASP", 0.0),
        (f"P ({setup.policy_percent:g}%)", setup.policy_percent),
    ):
        runs = runner.run_many(setup, {"kind": "switch", "percent": percent})
        alive = [run for run in runs if not run.diverged]
        if alive:
            best = max(alive, key=lambda run: run.reported_accuracy or 0.0)
            panel_runs[label] = best
        else:
            panel_runs[f"{label} (diverged)"] = runs[0]
    notes = [
        f"paper policy for this setup: switch at {setup.policy_percent:g}%",
        "final_loss is the mean last logged training loss: switching "
        "runs keep a higher training loss than BSP while matching its "
        "test accuracy (paper Fig. 11a, Remark A.2)",
    ]
    notes.extend(loss_and_accuracy_panels(panel_runs))
    return Report(
        ident=ident,
        title=f"Performance detail: {setup.describe()}",
        columns=[
            "switch_percent",
            "accuracy",
            "accuracy_std",
            "time_s",
            "normalized_time",
            "final_loss",
            "diverged_runs",
        ],
        rows=rows,
        notes=notes,
    )


def figure_11(runner: ExperimentRunner) -> Report:
    """Fig. 11: setup 1 detail (accuracy/time/loss vs switch timing)."""
    return _setup_detail(runner, SETUPS[1], "Figure 11")


def figure_12(runner: ExperimentRunner) -> Report:
    """Fig. 12: setup 2 detail."""
    return _setup_detail(runner, SETUPS[2], "Figure 12")


def figure_13(runner: ExperimentRunner) -> Report:
    """Fig. 13: setup 3 detail (divergence below the 50% switch point)."""
    report = _setup_detail(runner, SETUPS[3], "Figure 13")
    report.notes.append(
        "paper: ASP and every switch point before the first learning-rate "
        "decay (50%) diverge on the 16-worker cluster"
    )
    return report


def figure_14(runner: ExperimentRunner) -> Report:
    """Fig. 14: cross-examination of policies across setups."""
    rows = []
    policies = {
        1: SETUPS[1].policy_percent,
        2: SETUPS[2].policy_percent,
        3: SETUPS[3].policy_percent,
    }
    runner.prefetch(
        [
            (SETUPS[index], {"kind": "switch", "percent": percent})
            for index in (1, 2, 3)
            for percent in (100.0, *policies.values())
        ]
    )
    for setup_index in (1, 2, 3):
        setup = SETUPS[setup_index]
        bsp_time = time_stats(
            runner.run_many(setup, {"kind": "switch", "percent": 100.0})
        )["time_mean"]
        for policy_index, percent in policies.items():
            runs = runner.run_many(
                setup, {"kind": "switch", "percent": percent}
            )
            stats = accuracy_stats(runs) | time_stats(runs)
            failed = divergence_rate(runs) == 1.0
            rows.append(
                {
                    "setup": setup_index,
                    "policy": f"P{policy_index} ({percent:g}%)",
                    "accuracy": "FAIL" if failed else stats["accuracy_mean"],
                    "time_s": "FAIL" if failed else stats["time_mean"],
                    "normalized_time": (
                        "FAIL"
                        if failed
                        else (
                            stats["time_mean"] / bsp_time
                            if stats["time_mean"] and bsp_time
                            else None
                        )
                    ),
                }
            )
    return Report(
        ident="Figure 14",
        title="Cross-examination of Sync-Switch policies across setups",
        columns=["setup", "policy", "accuracy", "time_s", "normalized_time"],
        rows=rows,
        paper_rows=[
            {"observation": "policy 2 in setup 1: same accuracy, 1.33X time"},
            {"observation": "policy 3 in setup 1: 3X time of policy 1"},
            {"observation": "policies 1-2 in setup 3: diverged (Fail)"},
            {"observation": "policy 3 in setup 3: matches BSP, saves 46.4%"},
        ],
        notes=[
            "cluster size dominates policy transferability: a policy "
            "searched for a small cluster diverges on a larger one",
        ],
    )
