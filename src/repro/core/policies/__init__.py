"""Sync-Switch policy objects (protocol, timing, configuration, straggler)."""

from repro.core.policies.config import ConfigurationPolicy, MOMENTUM_MODES
from repro.core.policies.manager import PolicyManager
from repro.core.policies.protocol import ProtocolPolicy, ProtocolSchedule
from repro.core.policies.straggler import (
    BaselinePolicy,
    ElasticPolicy,
    GreedyPolicy,
    StragglerPolicy,
)
from repro.core.policies.timing import TimingPolicy

__all__ = [
    "MOMENTUM_MODES",
    "BaselinePolicy",
    "ConfigurationPolicy",
    "ElasticPolicy",
    "GreedyPolicy",
    "PolicyManager",
    "ProtocolPolicy",
    "ProtocolSchedule",
    "StragglerPolicy",
    "TimingPolicy",
]
