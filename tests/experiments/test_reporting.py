"""Tests for report rendering, aggregation and cross-artifact batching."""

import pytest

from repro.distsim.telemetry import TrainingResult
from repro.experiments import ExperimentRunner
from repro.experiments.aggregate import (
    accuracy_stats,
    divergence_rate,
    mean,
    mean_time_to_accuracy,
    std,
    time_stats,
)
from repro.experiments.figures import figure_2, figure_5b
from repro.experiments.reporting import (
    Report,
    collect_artifact_cells,
    prefetch_union,
    render_report,
)
from repro.experiments.runner import CollectionComplete


def result(accuracy=0.85, diverged=False, total_time=100.0) -> TrainingResult:
    return TrainingResult(
        plan="asp:100%",
        seed=0,
        n_workers=8,
        total_steps=100,
        completed_steps=100,
        total_time=total_time,
        diverged=diverged,
        diverged_step=50 if diverged else None,
        converged=not diverged,
        converged_accuracy=None if diverged else accuracy,
        reported_accuracy=None if diverged else accuracy,
        best_accuracy=None if diverged else accuracy,
        final_loss=0.3,
        eval_steps=(50, 100),
        eval_times=(10.0, 20.0),
        eval_accuracies=(accuracy - 0.2, accuracy),
        loss_steps=(),
        loss_values=(),
        segment_summary=(),
        staleness={},
        switch_count=0,
        total_overhead=0.0,
        images_processed=12800,
    )


class TestAggregate:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert std([2.0, 2.0]) == pytest.approx(0.0)
        assert mean([]) is None
        assert std([]) is None
        assert mean([1.0, None, 3.0]) == pytest.approx(2.0)

    def test_accuracy_stats(self):
        stats = accuracy_stats([result(0.8), result(0.9), result(diverged=True)])
        assert stats["accuracy_mean"] == pytest.approx(0.85)
        assert stats["accuracy_best"] == pytest.approx(0.9)
        assert stats["diverged"] == 1
        assert stats["n_runs"] == 3

    def test_time_stats_exclude_diverged(self):
        stats = time_stats([result(total_time=100.0),
                            result(diverged=True, total_time=5.0)])
        assert stats["time_mean"] == pytest.approx(100.0)

    def test_divergence_rate(self):
        assert divergence_rate([]) == 0.0
        assert divergence_rate([result(), result(diverged=True)]) == 0.5

    def test_mean_tta(self):
        tta, reached = mean_time_to_accuracy([result(0.9), result(0.7)], 0.85)
        assert reached == 1
        assert tta == pytest.approx(20.0)


class TestRenderReport:
    def test_contains_rows_and_notes(self):
        report = Report(
            ident="Table X",
            title="demo",
            columns=["name", "value"],
            rows=[{"name": "a", "value": 1.25}, {"name": "b", "value": None}],
            paper_rows=[{"name": "a", "value": 1.3}],
            notes=["a caveat"],
        )
        text = render_report(report)
        assert "Table X" in text
        assert "measured:" in text
        assert "paper:" in text
        assert "a caveat" in text
        assert "1.25" in text
        assert "-" in text  # None rendered as dash

    def test_alignment_header_separator(self):
        report = Report(
            ident="F",
            title="t",
            columns=["col"],
            rows=[{"col": "x"}],
        )
        lines = render_report(report).splitlines()
        separator = [line for line in lines if set(line) <= {"-", " "} and line]
        assert separator

    def test_column_values(self):
        report = Report(
            ident="F",
            title="t",
            columns=["col"],
            rows=[{"col": 1}, {"col": 2}],
        )
        assert report.column_values("col") == [1, 2]


class TestCrossArtifactScheduling:
    SCALE = 0.008

    def runner(self, tmp_path) -> ExperimentRunner:
        return ExperimentRunner(
            scale=self.SCALE, seeds=1, cache_dir=tmp_path, jobs=1
        )

    def test_collect_only_records_without_executing(self, tmp_path):
        runner = self.runner(tmp_path)
        with runner.collect_only() as grid:
            assert runner.is_collecting
            runner.prefetch(
                [(None, None)][:0]  # empty prefetch records nothing
            )
            with pytest.raises(CollectionComplete):
                runner.run_batch([])
        assert grid == []
        assert not runner.is_collecting
        assert list(tmp_path.glob("*.json")) == []  # nothing trained

    def test_collect_artifact_cells_matches_grid(self, tmp_path):
        runner = self.runner(tmp_path)
        cells = collect_artifact_cells(runner, figure_2)
        # Fig. 2: four configurations x one seed, none executed.
        assert len(cells) == 4
        assert list(tmp_path.glob("*.json")) == []

    def test_prefetch_union_deduplicates_across_artifacts(self, tmp_path):
        runner = self.runner(tmp_path)
        # fig2 uses {0, 25, 50, 100}%; fig5b sweeps 7 percents
        # including those four: the union is exactly the sweep.
        unique = prefetch_union(runner, [figure_2, figure_5b])
        assert unique == 7
        assert len(list(tmp_path.glob("*.json"))) == 7

    def test_rendering_after_union_prefetch_adds_no_cells(self, tmp_path):
        runner = self.runner(tmp_path)
        prefetch_union(runner, [figure_2])
        cached = set(tmp_path.glob("*.json"))
        report = figure_2(runner)
        assert len(report.rows) == 4
        assert set(tmp_path.glob("*.json")) == cached
