"""Regenerates the paper's Figure 16.

Search cost vs attempts per setting for recurring / bn=n / bn=1
strategies across all setups.

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import figure_16


def bench_fig16_search_tradeoff(benchmark, runner, emit):
    report = benchmark.pedantic(
        figure_16, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "fig16_search_tradeoff")
    assert report.rows, "artifact produced no measured rows"
