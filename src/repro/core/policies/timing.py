"""Timing policy: when to switch from the first protocol to the second.

The offline timing policy is a single number — the fraction of the step
budget trained with the precise protocol before switching (paper
Table I: 6.25% / 12.5% / 50% for the three setups).  It is found by the
offline binary search (:mod:`repro.core.search.binary_search`) for new
jobs and reused directly for recurring ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies.config import ConfigurationPolicy
from repro.core.policies.protocol import ProtocolPolicy
from repro.distsim.job import JobConfig, Segment, TrainingPlan
from repro.errors import ConfigurationError

__all__ = ["TimingPolicy"]


@dataclass(frozen=True)
class TimingPolicy:
    """Switch point plus provenance."""

    switch_fraction: float
    source: str = "manual"

    def __post_init__(self):
        if not 0.0 <= self.switch_fraction <= 1.0:
            raise ConfigurationError("switch_fraction must be in [0, 1]")

    @property
    def switch_percent(self) -> float:
        """Switch point in percent (paper notation)."""
        return self.switch_fraction * 100.0

    def switch_step(self, total_steps: int) -> int:
        """Absolute step at which the switch happens."""
        return int(round(self.switch_fraction * total_steps))

    def build_plan(
        self,
        job: JobConfig,
        n_workers: int,
        protocol_policy: ProtocolPolicy | None = None,
        config_policy: ConfigurationPolicy | None = None,
    ) -> TrainingPlan:
        """Materialise the two-phase plan with configured hyper-parameters."""
        protocol_policy = protocol_policy or ProtocolPolicy()
        config_policy = config_policy or ConfigurationPolicy()
        first_options = config_policy.options_for(
            protocol_policy.first, job, n_workers
        )
        second_options = config_policy.options_for(
            protocol_policy.second, job, n_workers
        )
        if self.switch_fraction == 0.0:
            return TrainingPlan(
                (Segment(protocol_policy.second, 1.0, second_options),)
            )
        if self.switch_fraction == 1.0:
            return TrainingPlan(
                (Segment(protocol_policy.first, 1.0, first_options),)
            )
        return TrainingPlan(
            (
                Segment(
                    protocol_policy.first, self.switch_fraction, first_options
                ),
                Segment(
                    protocol_policy.second,
                    1.0 - self.switch_fraction,
                    second_options,
                ),
            )
        )
