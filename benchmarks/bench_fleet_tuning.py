"""Fleet tuning throughput: wall-clock cost of the fleet-search grid.

Cold-cache by design (like ``bench_fleet_throughput``): the benchmarked
call runs the full amortized-search comparison — the default
fleet-search scenarios, all-BSP vs tuned Sync-Switch, multi-seed — in
a fresh temporary cache, so the number tracks the cost of tuning a
recurring stream end to end (search trials included).  The simulated
economics (tuned speedup, search cost, break-even recurrences) land in
``extra_info`` and refresh ``results/fleet_tuning_summary.json``, the
artifact the acceptance criteria pin.
"""

import json
import tempfile
from pathlib import Path

from repro.experiments.fleet import (
    DEFAULT_FLEET_SCALE,
    DEFAULT_TUNING_SCENARIOS,
    DEFAULT_TUNING_SEEDS,
    tuning_grid,
    tuning_summary_payload,
    write_tuning_summary,
)

# benchmarks/ is not an importable package, so mirror conftest's path.
RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def _run_grid(jobs):
    with tempfile.TemporaryDirectory(prefix="repro-fleet-tuning-") as cache:
        return tuning_grid(
            scenarios=DEFAULT_TUNING_SCENARIOS,
            seeds=DEFAULT_TUNING_SEEDS,
            scale=DEFAULT_FLEET_SCALE,
            jobs=jobs,
            cache_dir=cache,
        )


def bench_fleet_tuning(benchmark, jobs):
    grid = benchmark.pedantic(
        _run_grid, args=(jobs,), rounds=1, iterations=1, warmup_rounds=0
    )
    payload = tuning_summary_payload(
        grid,
        DEFAULT_TUNING_SCENARIOS,
        DEFAULT_TUNING_SEEDS,
        DEFAULT_FLEET_SCALE,
        "fifo",
    )
    info = {
        "scenarios": list(DEFAULT_TUNING_SCENARIOS),
        "seeds": DEFAULT_TUNING_SEEDS,
        "scale": DEFAULT_FLEET_SCALE,
        "jobs": jobs,
    }
    for scenario, entry in payload["scenarios"].items():
        info[f"{scenario}_tuned_speedup_x"] = entry["tuned_speedup_x"]
        info[f"{scenario}_tuned_beats_bsp"] = entry["tuned_beats_bsp"]
        classes = entry["tuned"]["classes"]
        if classes:
            info[f"{scenario}_amortized_recurrences"] = classes[0][
                "amortized_recurrences_mean"
            ]
    benchmark.extra_info.update(info)
    RESULTS_DIR.mkdir(exist_ok=True)
    target = write_tuning_summary(
        payload, path=RESULTS_DIR / "fleet_tuning_summary.json"
    )
    assert json.loads(target.read_text(encoding="utf-8"))["scenarios"]
    for entry in payload["scenarios"].values():
        assert entry["tuned"]["mean_jct"] > 0.0
