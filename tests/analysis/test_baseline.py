"""Baseline ratchet behavior: new fails, baselined passes, fixed goes stale."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, ratchet


def finding(message="direct call", path="repro/x.py", line=3, rule="D001"):
    return Finding(path=path, line=line, rule=rule, message=message)


def entry(message="direct call", path="repro/x.py", rule="D001", note="ok"):
    return BaselineEntry(rule=rule, path=path, message=message, note=note)


def test_new_finding_is_reported():
    result = ratchet([finding()], Baseline())
    assert result.new == [finding()]
    assert result.stale == []
    assert not result.clean


def test_baselined_finding_passes():
    result = ratchet([finding()], Baseline(entries=(entry(),)))
    assert result.new == []
    assert result.stale == []
    assert result.matched == 1
    assert result.clean


def test_fixed_finding_flags_stale_entry():
    result = ratchet([], Baseline(entries=(entry(),)))
    assert result.new == []
    assert result.stale == [entry()]
    assert not result.clean


def test_line_moves_do_not_trip_the_ratchet():
    # identity is (rule, path, message): refactors that shift the line
    # of a tolerated finding stay tolerated.
    result = ratchet([finding(line=120)], Baseline(entries=(entry(),)))
    assert result.clean


def test_multiset_semantics():
    # one baselined occurrence + one new occurrence of the same message
    result = ratchet(
        [finding(line=3), finding(line=40)], Baseline(entries=(entry(),))
    )
    assert result.matched == 1
    assert [f.line for f in result.new] == [40]
    # two baselined, one found: the surplus entry is stale
    result = ratchet(
        [finding()], Baseline(entries=(entry(), entry(note="twice")))
    )
    assert result.matched == 1
    assert len(result.stale) == 1


def test_roundtrip_and_note_requirement(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline(entries=(entry(),)).save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == (entry(),)
    with pytest.raises(ValueError, match="note"):
        Baseline(entries=(entry(note=""),)).save(path)


def test_load_missing_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == ()


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps({"version": 99, "entries": []}), encoding="utf-8"
    )
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_from_findings_sorts_and_notes():
    findings = [finding(path="repro/b.py"), finding(path="repro/a.py")]
    baseline = Baseline.from_findings(findings, note="historic")
    assert [e.path for e in baseline.entries] == ["repro/a.py", "repro/b.py"]
    assert all(e.note == "historic" for e in baseline.entries)


def test_committed_baseline_is_loadable_and_noted():
    from repro.analysis import repo_root

    path = repo_root() / "tests" / "data" / "lint_baseline.json"
    baseline = Baseline.load(path)
    # the committed ratchet stays minimal: every entry must carry a
    # justification note (an empty baseline is the ideal state)
    assert all(entry.note for entry in baseline.entries)
