"""Tests for TrainingSession bookkeeping (shared engine state)."""

import numpy as np
import pytest

from repro.distsim.cluster import Cluster, ClusterSpec
from repro.distsim.engines import ASPEngine, BSPEngine
from repro.distsim.engines.base import TrainingSession
from repro.distsim.job import JobConfig
from repro.distsim.timing import timing_for
from repro.mlcore.datasets import make_dataset
from repro.mlcore.models import make_model
from repro.mlcore.optim import LinearRampMomentum


def make_session(n_workers=4, total_steps=400, eval_every=100, seed=0):
    job = JobConfig(
        model="resnet32-sim",
        dataset="cifar10-sim",
        total_steps=total_steps,
        base_lr=0.004,
        eval_every=eval_every,
        loss_log_every=50,
        seed=seed,
    )
    return TrainingSession(
        job=job,
        model=make_model("resnet32-sim"),
        dataset=make_dataset("cifar10-sim"),
        timing=timing_for("resnet32-sim"),
        cluster=Cluster(ClusterSpec(n_workers=n_workers)),
    )


class TestHyperParameterResolution:
    def test_fraction_tracks_progress(self):
        session = make_session(total_steps=400)
        assert session.fraction == 0.0
        session.step = 200
        assert session.fraction == pytest.approx(0.5)
        session.step = 800
        assert session.fraction == 1.0  # clipped

    def test_base_lr_follows_decay_schedule(self):
        session = make_session(total_steps=400)
        lr_start = session.base_lr_now()
        session.step = 200
        assert session.base_lr_now() == pytest.approx(0.1 * lr_start)
        session.step = 300
        assert session.base_lr_now() == pytest.approx(0.01 * lr_start)

    def test_momentum_without_schedule_is_job_momentum(self):
        session = make_session()
        assert session.momentum_now() == 0.9

    def test_momentum_ramp_counts_epochs_after_switch(self):
        session = make_session()
        session.step = 100
        session.note_async_phase(
            LinearRampMomentum(momentum=0.9, n_workers=4)
        )
        assert session.momentum_now() == 0.0  # zero epochs elapsed
        train_size = len(session.dataset.y_train)
        # advance exactly 2 epochs worth of steps
        session.step = 100 + 2 * train_size // session.job.batch_size
        assert session.momentum_now() == pytest.approx(0.5, abs=0.01)

    def test_async_switch_step_fixed_at_first_async_phase(self):
        session = make_session()
        session.step = 50
        session.note_async_phase(None)
        session.step = 90
        session.note_async_phase(None)
        assert session.async_switch_step == 50


class TestDataAccess:
    def test_worker_batches_come_from_disjoint_shards(self):
        session = make_session(n_workers=4)
        lo0, hi0 = session.dataset.shard_range(0, 4)
        x0, _ = session.worker_batch(0, 16)
        pool = session.dataset.x_train[lo0:hi0]
        for row in x0[:4]:
            assert (np.abs(pool - row).sum(axis=1) < 1e-12).any()

    def test_global_batch_concatenates_workers(self):
        session = make_session(n_workers=4)
        inputs, labels = session.global_batch((0, 1, 2, 3), 32)
        assert inputs.shape == (128, session.dataset.input_dim)
        assert labels.shape == (128,)

    def test_data_streams_differ_per_worker(self):
        session = make_session(n_workers=2)
        x0, _ = session.worker_batch(0, 8)
        x1, _ = session.worker_batch(1, 8)
        assert not np.array_equal(x0, x1)


class TestLoggingCadence:
    def test_eval_cadence_respected(self):
        session = make_session(total_steps=400, eval_every=100)
        BSPEngine().run(session, steps=400)
        eval_steps = [step for step, _, _ in session.telemetry.eval_log]
        assert len(eval_steps) >= 4
        gaps = [b - a for a, b in zip(eval_steps, eval_steps[1:])]
        assert all(gap >= 99 for gap in gaps)

    def test_loss_log_cadence(self):
        session = make_session(total_steps=400)
        ASPEngine().run(session, steps=200)
        loss_steps = [step for step, _, _ in session.telemetry.loss_log]
        gaps = [b - a for a, b in zip(loss_steps, loss_steps[1:])]
        assert all(gap >= 50 for gap in gaps)

    def test_evaluate_now_records_tracker(self):
        session = make_session()
        accuracy = session.evaluate_now()
        assert 0.0 <= accuracy <= 1.0
        assert session.tracker.final_accuracy == pytest.approx(accuracy)


class TestFork:
    """Session forks continue bit-identically and independently."""

    def test_fork_continues_bit_identically(self):
        session = make_session(n_workers=4)
        ASPEngine().run(session, steps=30)
        clone = session.fork()
        ASPEngine().run(session, steps=30)
        ASPEngine().run(clone, steps=30)
        assert np.array_equal(session.ps.peek(), clone.ps.peek())
        assert session.clock.now == clone.clock.now
        assert session.step == clone.step
        assert list(session.telemetry.loss_log) == list(
            clone.telemetry.loss_log
        )

    def test_fork_shares_substrate_and_copies_mutable_state(self):
        session = make_session()
        ASPEngine().run(session, steps=10)
        clone = session.fork()
        assert clone.dataset is session.dataset
        assert clone.model is session.model
        assert clone.timing is session.timing
        assert clone.stragglers is session.stragglers
        assert clone.ps is not session.ps
        assert clone.clock is not session.clock
        assert clone.cluster is not session.cluster

    def test_fork_is_independent(self):
        session = make_session()
        ASPEngine().run(session, steps=10)
        clone = session.fork()
        before = session.ps.peek().copy()
        ASPEngine().run(clone, steps=40)
        assert np.array_equal(session.ps.peek(), before)
        assert session.step == 10
