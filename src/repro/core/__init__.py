"""Sync-Switch: the paper's contribution.

``repro.core.policies``
    Protocol order (BSP then ASP), switch-timing, hyper-parameter
    configuration, and online straggler policies.

``repro.core.runtime``
    The system half of Fig. 9: profiler, straggler detector,
    checkpoint store, configuration actuators, per-node hook manager
    and the :class:`~repro.core.runtime.controller.SyncSwitchController`
    that ties policies to the execution substrate.

``repro.core.search``
    The offline binary-search timing algorithm (Algorithm 1) and the
    Monte-Carlo search-cost simulator behind Tables II/IV-VI and
    Fig. 16.
"""

from repro.core.policies import (
    ConfigurationPolicy,
    ElasticPolicy,
    GreedyPolicy,
    PolicyManager,
    ProtocolPolicy,
    TimingPolicy,
)
from repro.core.runtime import (
    CheckpointStore,
    HookManager,
    ParallelActuator,
    SequentialActuator,
    StragglerDetector,
    SyncSwitchController,
    ThroughputProfiler,
)
from repro.core.search import (
    OfflineTimingSearch,
    SearchCostSimulator,
    SearchSetting,
)

__all__ = [
    "CheckpointStore",
    "ConfigurationPolicy",
    "ElasticPolicy",
    "GreedyPolicy",
    "HookManager",
    "OfflineTimingSearch",
    "ParallelActuator",
    "PolicyManager",
    "ProtocolPolicy",
    "SearchCostSimulator",
    "SearchSetting",
    "SequentialActuator",
    "StragglerDetector",
    "SyncSwitchController",
    "ThroughputProfiler",
    "TimingPolicy",
]
