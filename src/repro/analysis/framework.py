"""Rule-engine core of ``repro lint``.

The determinism guarantees this reproduction leans on — bit-identical
golden hashes, ``--procs 1`` vs ``N`` equivalence, prefix-stable shard
assignment — are conventions (all randomness through
:mod:`repro.rng`, cache keys covering every behavior-affecting field,
no wall clock in the simulator).  This module machine-checks them: it
parses every source file once, hands the shared AST to a registry of
:class:`Rule` objects and collects :class:`Finding` records, honouring
per-line suppression comments::

    value = risky_call()  # repro-lint: disable=D001
    other = risky_call()  # repro-lint: disable=D001,D002
    third = risky_call()  # repro-lint: disable

Adding a rule is ~50 lines: subclass :class:`Rule` (per-file AST
checks) or :class:`ProjectRule` (whole-tree semantic checks), decorate
with :func:`register`, and it participates in scoping, suppression,
baselining and reporting for free.

Paths in findings are **relative to the lint root** with any leading
``src/`` stripped, so rule scoping (``repro/distsim/...``) works both
on the real tree and on the fixture mini-trees under
``tests/analysis/fixtures/``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "analyze_paths",
    "default_rules",
    "normalize_relpath",
    "register",
    "repo_root",
    "resolve_lint_root",
    "suppressed_lines",
]

#: ``# repro-lint: disable`` (all rules) or ``disable=D001,D004``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?"
)

#: Directory names never descended into while collecting files.
_SKIP_DIRS = frozenset(
    {".git", ".exp_cache", "__pycache__", ".pytest_cache", ".hypothesis"}
)


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


def resolve_lint_root(paths: Sequence[Path], default: Path) -> Path:
    """The root findings are reported relative to.

    ``default`` (the repo root) when every scanned path lives under
    it — the committed-baseline case; otherwise the single directory
    being linted, or the deepest common ancestor of the paths (the
    fixture-tree case).
    """
    resolved = [path.resolve() for path in paths]
    anchor = default.resolve()
    if all(
        path == anchor or anchor in path.parents for path in resolved
    ):
        return anchor
    if len(resolved) == 1 and resolved[0].is_dir():
        return resolved[0]
    common = os.path.commonpath(
        [str(path if path.is_dir() else path.parent) for path in resolved]
    )
    return Path(common)


def normalize_relpath(path: Path, root: Path) -> str:
    """POSIX path of ``path`` relative to ``root``, ``src/`` stripped.

    Stripping the layout prefix keeps rule scopes (``repro/distsim``)
    and baseline entries stable whether the tree is linted from the
    repo root or from a fixture directory that mirrors the package.
    """
    relative = path.resolve().relative_to(root.resolve()).as_posix()
    if relative.startswith("src/"):
        relative = relative[len("src/"):]
    return relative


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    The ratchet identity (:meth:`identity`) deliberately omits the
    line number: moving unrelated code around a baselined finding must
    not trip the gate, while a *new* occurrence of the same message in
    the same file still counts (the ratchet compares multisets).
    """

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """``file:line:rule`` text form (the CLI's stdout format)."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def identity(self) -> tuple[str, str, str]:
        """Line-free key used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a per-file rule needs: one parse, shared by all rules."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s first line."""
        return Finding(
            path=self.relpath,
            line=int(getattr(node, "lineno", 1)),
            rule=rule,
            message=message,
        )


class Rule:
    """A per-file AST check.

    Subclasses set :attr:`id`/:attr:`title` and implement
    :meth:`check`; :meth:`applies` scopes the rule to path prefixes
    (``scope``) minus exact-path exemptions (``exempt``).
    """

    id: str = ""
    title: str = ""
    #: Relpath prefixes the rule runs on (empty: every file).
    scope: tuple[str, ...] = ()
    #: Exact relpaths or prefixes the rule never flags.
    exempt: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        """Whether ``relpath`` is in this rule's scope."""
        if any(
            relpath == entry or relpath.startswith(entry)
            for entry in self.exempt
        ):
            return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, context: FileContext) -> list[Finding]:
        """Findings for one file (override in subclasses)."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-tree semantic check, run once per lint invocation."""

    def check(self, context: FileContext) -> list[Finding]:
        return []

    def check_project(self, root: Path) -> list[Finding]:
        """Findings for the tree rooted at ``root`` (override)."""
        raise NotImplementedError


#: Rule id -> rule class, populated by :func:`register`.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def default_rules(select: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Instantiate the registered rules (optionally a subset by id)."""
    # Import for the registration side effect; delayed so the registry
    # and the rule modules can import each other's types freely.
    from repro.analysis import dataclass_keys, rules  # noqa: F401

    wanted = None if select is None else set(select)
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )
    return tuple(
        RULE_REGISTRY[rule_id]()
        for rule_id in sorted(RULE_REGISTRY)
        if wanted is None or rule_id in wanted
    )


def suppressed_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (``None``: all rules).

    Parsed with a comment regex rather than ``tokenize`` so syntactically
    broken files can still report their suppressions; a ``disable``
    marker inside a string literal is treated as real, which is
    harmless in practice and keeps the scan allocation-free.
    """
    table: dict[int, frozenset[str] | None] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            table[number] = None
        else:
            table[number] = frozenset(
                part.strip() for part in raw.split(",") if part.strip()
            )
    return table


def _is_suppressed(
    finding: Finding, table: dict[int, frozenset[str] | None]
) -> bool:
    if finding.line not in table:
        return False
    rules = table[finding.line]
    return rules is None or finding.rule in rules


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` (skipping cache/VCS dirs)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            resolved = path.resolve()
            if resolved not in seen and path.suffix == ".py":
                seen.add(resolved)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class LintReport:
    """The outcome of one analysis pass: findings plus scan metadata."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        """Findings plus parse errors, sorted for stable output."""
        return sorted(self.findings + self.parse_errors)


def analyze_paths(
    paths: Sequence[Path],
    root: Path,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Run ``rules`` over every Python file under ``paths``.

    Per-file rules share a single parse of each file; project rules
    (semantic checks like D004) run once against ``root``.  A file
    that fails to parse yields a synthetic ``E001`` finding rather
    than aborting the scan.
    """
    active = default_rules() if rules is None else tuple(rules)
    file_rules = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    report = LintReport(root=root)
    for path in iter_python_files(paths):
        relpath = normalize_relpath(path, root)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    path=relpath,
                    line=int(exc.lineno or 1),
                    rule="E001",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        report.files_scanned += 1
        context = FileContext(
            path=path, relpath=relpath, source=source, tree=tree
        )
        table = suppressed_lines(source)
        for rule in file_rules:
            if not rule.applies(relpath):
                continue
            for finding in rule.check(context):
                if not _is_suppressed(finding, table):
                    report.findings.append(finding)
    for rule in project_rules:
        report.findings.extend(rule.check_project(root))
    report.findings.sort()
    return report
