"""Regenerates the paper's Table III.

Initialization and protocol-switch overhead, sequential vs parallel
actuators, 8/16 workers.

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import table_3


def bench_tab03_overhead(benchmark, runner, emit):
    report = benchmark.pedantic(
        table_3, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "tab03_overhead")
    assert report.rows, "artifact produced no measured rows"
