"""Bulk Synchronous Parallel engine.

Semantics (paper Fig. 3a): every round, each active worker computes one
mini-batch gradient on the *same* parameter version; the PS waits at a
barrier until all gradients arrive, aggregates them, and applies one
update.  The configuration policy makes the global batch ``n*B`` and
the learning rate ``n*eta`` (linear scaling rule, Section IV-C).

Two notes on fidelity:

* Numerically, the mean of per-worker mean-gradients equals the
  gradient of the concatenated global batch (all workers share the
  parameter vector), so the engine evaluates one big-batch gradient —
  bit-identical to aggregating n small ones but much faster on BLAS.
* Timing-wise, each worker's batch duration is drawn separately
  (including straggler state), and the round lasts
  ``max_i(duration_i) + sync_overhead(n)`` — the barrier semantics
  that make BSP straggler-sensitive.

One BSP round advances the global step counter by ``n`` (each worker
contributed one mini-batch of progress), matching the paper's
step-count bookkeeping in Figs. 11-13.
"""

from __future__ import annotations

from repro.distsim.engines.base import StopCondition, TrainingSession

__all__ = ["BSPEngine"]


class BSPEngine:
    """Synchronous rounds with barrier timing and one global update."""

    name = "bsp"
    #: Registry metadata (see ``repro.distsim.engines``): precision is
    #: the staleness-ordering rank — lower trains more precisely.
    precision = 0
    synchronous = True
    config_schema = {
        "batch_size": "per-worker mini-batch size (default: job batch size)",
        "lr_multiplier": "learning-rate scale (default: n_active, linear rule)",
    }

    def run(
        self,
        session: TrainingSession,
        steps: int,
        options: dict | None = None,
        stop: StopCondition | None = None,
    ) -> str:
        options = options or {}
        batch_size = int(options.get("batch_size", session.job.batch_size))
        target = session.step + steps
        while session.step < target:
            workers = session.cluster.active_workers
            n_active = len(workers)
            lr_multiplier = float(options.get("lr_multiplier", n_active))

            # Timing half: draw each worker's duration under its current
            # straggler state (batched: one schedule query per round);
            # the barrier waits for the slowest.
            now = session.clock.now
            durations = []
            straggler_states = session.stragglers.states_at(workers, now)
            for worker, (slow, latency) in zip(workers, straggler_states):
                duration = session.timing.compute_time(
                    batch_size, session.time_noise(worker), slow, latency
                )
                durations.append(duration)
                session.telemetry.record_worker_duration(now, worker, duration)
            round_time = session.timing.bsp_round_time(durations, n_active)

            # Numeric half: one aggregated update on the global batch.
            inputs, labels = session.global_batch(workers, batch_size)
            loss, grad = session.model.loss_and_grad(
                session.ps.peek(), inputs, labels, grad_out=session.grad_buffer()
            )
            lr = session.base_lr_now() * lr_multiplier
            session.ps.push(grad, lr, momentum=session.job.momentum)
            session.telemetry.record_staleness(0)

            session.clock.advance(round_time)
            session.step += n_active
            session.telemetry.images_processed += n_active * batch_size
            session.after_update(loss)

            if stop is not None:
                reason = stop(session)
                if reason:
                    return reason
        return "completed"
