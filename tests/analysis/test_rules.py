"""Per-rule positive/negative coverage over the fixture mini-tree.

The fixture tree under ``tests/analysis/fixtures`` mirrors the real
package layout (``repro/distsim/...``), so rule path-scoping is
exercised exactly as on the real tree.
"""

from collections import Counter

from helpers_lint import findings_for


def by_file(findings):
    return Counter(finding.path for finding in findings)


# ----------------------------------------------------------------------
# D001 — direct RNG use
# ----------------------------------------------------------------------


def test_d001_flags_every_direct_rng_call(fixtures_root):
    findings = findings_for(fixtures_root, ["D001"])
    violations = [
        f for f in findings if f.path == "repro/d001_violation.py"
    ]
    assert [f.line for f in violations] == [8, 9, 10, 11, 12]
    assert all(f.rule == "D001" for f in violations)


def test_d001_resolves_aliases_and_from_imports(fixtures_root):
    findings = findings_for(fixtures_root, ["D001"])
    messages = " ".join(
        f.message for f in findings if f.path == "repro/d001_violation.py"
    )
    # the alias np->numpy and both from-imports resolve to full paths
    assert "numpy.random.default_rng" in messages
    assert "random.shuffle" in messages
    assert "random.random" in messages


def test_d001_ignores_locals_annotations_and_rng_py(fixtures_root):
    findings = findings_for(fixtures_root, ["D001"])
    flagged = by_file(findings)
    assert "repro/d001_clean.py" not in flagged  # locals + annotations
    assert "repro/rng.py" not in flagged  # the sanctioned wrapper module


def test_d001_suppression_comments(fixtures_root):
    findings = [
        f
        for f in findings_for(fixtures_root, ["D001"])
        if f.path == "repro/d001_suppressed.py"
    ]
    # disable=D001, disable=D001,D002 and bare disable all suppress;
    # disable=D002 on a D001 finding does not.
    assert [f.line for f in findings] == [8]


# ----------------------------------------------------------------------
# D002 — wall-clock reads
# ----------------------------------------------------------------------


def test_d002_flags_wall_clock_in_simulation_code(fixtures_root):
    findings = [
        f
        for f in findings_for(fixtures_root, ["D002"])
        if f.path == "repro/distsim/d002_violation.py"
    ]
    assert [f.line for f in findings] == [7, 8, 9, 10]
    messages = " ".join(f.message for f in findings)
    assert "time.time" in messages
    assert "time.perf_counter" in messages
    assert "datetime.datetime.now" in messages
    assert "time.monotonic_ns" in messages


def test_d002_allowlist_and_locals(fixtures_root):
    flagged = by_file(findings_for(fixtures_root, ["D002"]))
    assert "repro/experiments/hotpath.py" not in flagged  # perf harness
    assert "repro/obs/export_clock.py" not in flagged  # obs export
    assert "repro/distsim/d002_clean.py" not in flagged  # local `time`


# ----------------------------------------------------------------------
# D003 — unordered-set iteration
# ----------------------------------------------------------------------


def test_d003_flags_set_iteration(fixtures_root):
    findings = [
        f
        for f in findings_for(fixtures_root, ["D003"])
        if f.path == "repro/distsim/d003_violation.py"
    ]
    assert [f.line for f in findings] == [8, 11, 14, 15, 16]


def test_d003_allows_sorted_and_order_free_consumers(fixtures_root):
    flagged = by_file(findings_for(fixtures_root, ["D003"]))
    assert "repro/distsim/d003_clean.py" not in flagged


def test_d003_scoped_to_simulation_modules(fixtures_root, tmp_path):
    # The same set iteration outside distsim/fleet/core is not flagged.
    outside = tmp_path / "repro" / "experiments"
    outside.mkdir(parents=True)
    (outside / "loops.py").write_text(
        "for x in {1, 2}:\n    pass\n", encoding="utf-8"
    )
    assert findings_for(tmp_path, ["D003"]) == []


# ----------------------------------------------------------------------
# D005 — engine shared-generator draws
# ----------------------------------------------------------------------


def test_d005_flags_private_stores_and_shared_draws(fixtures_root):
    findings = [
        f
        for f in findings_for(fixtures_root, ["D005"])
        if f.path == "repro/distsim/engines/d005_violation.py"
    ]
    assert sorted(f.line for f in findings) == [9, 10, 11]
    messages = " ".join(f.message for f in findings)
    assert "_time_rngs" in messages
    assert ".normal(...)" in messages
    assert ".lognormal(...)" in messages


def test_d005_accessor_paths_are_clean(fixtures_root):
    flagged = by_file(findings_for(fixtures_root, ["D005"]))
    assert "repro/distsim/engines/d005_clean.py" not in flagged
    assert "repro/distsim/engines/base.py" not in flagged  # exempt owner
