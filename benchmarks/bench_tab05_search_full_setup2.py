"""Regenerates the paper's Table V.

Full search cost/performance analysis for setup 2 (14 settings).

The benchmark measures one artifact regeneration (single pedantic
round): cold-cache cost on the first pass, replay-from-logs cost
afterwards.  Underlying training runs come from the shared cached
runner (see conftest).
"""

from repro.experiments import table_5


def bench_tab05_search_full_setup2(benchmark, runner, emit):
    report = benchmark.pedantic(
        table_5, args=(runner,), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(report, "tab05_search_full_setup2")
    assert report.rows, "artifact produced no measured rows"
