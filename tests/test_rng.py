"""Tests for deterministic RNG plumbing."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import child_rng, child_seed, make_rng, stable_hash


def test_stable_hash_is_deterministic():
    assert stable_hash("worker/3") == stable_hash("worker/3")


def test_stable_hash_differs_across_labels():
    assert stable_hash("a") != stable_hash("b")


def test_stable_hash_known_value_does_not_drift():
    # FNV-1a of the empty string is the offset basis.
    assert stable_hash("") == 14695981039346656037


def test_make_rng_passes_generators_through():
    rng = np.random.default_rng(0)
    assert make_rng(rng) is rng


def test_make_rng_from_seed():
    a = make_rng(7).integers(0, 1 << 30, 8)
    b = make_rng(7).integers(0, 1 << 30, 8)
    assert (a == b).all()


def test_child_rng_reproducible():
    a = child_rng(5, "data/0").normal(size=4)
    b = child_rng(5, "data/0").normal(size=4)
    assert (a == b).all()


def test_child_rng_independent_streams():
    a = child_rng(5, "data/0").normal(size=16)
    b = child_rng(5, "data/1").normal(size=16)
    assert not (a == b).all()


@given(st.integers(min_value=0, max_value=1 << 48), st.text(max_size=30))
def test_child_seed_in_64_bit_range(seed, label):
    value = child_seed(seed, label)
    assert 0 <= value < (1 << 64)


@given(st.text(max_size=30))
def test_hash_is_64_bit(label):
    assert 0 <= stable_hash(label) < (1 << 64)
